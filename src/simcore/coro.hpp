// C++20 coroutine support for writing simulated processes.
//
// Model code (the Fx SPMD runtime, PVM tasks, the TCP stack's blocking
// waits) is written as straight-line coroutines:
//
//     sim::Co<void> worker(sim::Simulator& s, ...) {
//       co_await sim::delay(s, sim::millis(5));   // compute phase
//       co_await queue.pop(s);                    // blocking receive
//     }
//
// `Co<T>` is a lazily-started awaitable coroutine used for subroutines;
// `spawn()` turns a `Co<void>` into a detached top-level `Process` whose
// completion (or failure) is observable after the simulator runs.  All
// resumptions are funnelled through the event queue at the current
// timestamp, keeping execution order deterministic and stacks shallow.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "simcore/simulator.hpp"

namespace fxtraf::sim {

template <typename T = void>
class Co;

namespace detail {

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation;  // resumed at final suspend
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// Lazily-started awaitable coroutine returning T.
template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    std::optional<T> value;

    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Co(Co&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // start the child; symmetric transfer
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    return std::move(*p.value);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) handle_.destroy();
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Co(Co&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  friend class Process;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) handle_.destroy();
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Handle to a detached top-level coroutine process.
///
/// The process body starts running synchronously inside spawn() until its
/// first suspension; from then on the event queue drives it.  After the
/// simulator runs, `done()` distinguishes completion from deadlock, and
/// `rethrow_if_failed()` surfaces exceptions thrown inside the process.
///
/// The completion state is intrusively refcounted (plain int — the
/// simulator is single-threaded by contract, so the shared_ptr this
/// replaced paid for atomic increments nothing ever raced on).
class Process {
 public:
  Process() = default;

  Process(const Process& o) : state_(o.state_) { retain(); }
  Process(Process&& o) noexcept : state_(std::exchange(o.state_, nullptr)) {}
  Process& operator=(const Process& o) {
    if (this != &o) {
      release();
      state_ = o.state_;
      retain();
    }
    return *this;
  }
  Process& operator=(Process&& o) noexcept {
    if (this != &o) {
      release();
      state_ = std::exchange(o.state_, nullptr);
    }
    return *this;
  }
  ~Process() { release(); }

  [[nodiscard]] bool done() const { return state_ && state_->done; }
  [[nodiscard]] bool failed() const { return state_ && state_->error; }
  void rethrow_if_failed() const {
    if (state_ && state_->error) std::rethrow_exception(state_->error);
  }

  friend Process spawn(Co<void> body);

 private:
  struct State {
    int refs = 1;
    bool done = false;
    std::exception_ptr error;
  };

  void retain() const {
    if (state_) ++state_->refs;
  }
  void release() {
    if (state_ && --state_->refs == 0) delete state_;
    state_ = nullptr;
  }

  struct Detached {
    struct promise_type {
      Detached get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { std::terminate(); }  // Co<> catches all
    };
  };

  static Detached drive(Co<void> body, Process holder) {
    try {
      co_await std::move(body);
    } catch (...) {
      holder.state_->error = std::current_exception();
    }
    holder.state_->done = true;
  }

  State* state_ = nullptr;
};

/// Launches `body` as a detached process; see Process.
inline Process spawn(Co<void> body) {
  Process p;
  p.state_ = new Process::State{};
  Process::drive(std::move(body), p);  // copy keeps state alive in the frame
  return p;
}

/// Awaitable that suspends the current coroutine for `d` of simulated time.
struct DelayAwaiter {
  Simulator& simulator;
  Duration duration;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    simulator.schedule_in(duration, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline DelayAwaiter delay(Simulator& s, Duration d) {
  return DelayAwaiter{s, d};
}

/// Background variant: the wakeup never keeps the simulator alive on its
/// own (for service loops such as daemon keepalives).
struct BackgroundDelayAwaiter {
  Simulator& simulator;
  Duration duration;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    simulator.schedule_in_background(duration, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline BackgroundDelayAwaiter delay_background(Simulator& s,
                                                             Duration d) {
  return BackgroundDelayAwaiter{s, d};
}

/// One-shot event: waiters suspend until set() fires; afterwards waiting
/// completes immediately.
class CoEvent {
 public:
  [[nodiscard]] bool is_set() const { return set_; }

  void set(Simulator& s) {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) s.schedule_now([h] { h.resume(); });
    waiters_.clear();
  }

  struct Awaiter {
    CoEvent& event;
    bool await_ready() const noexcept { return event.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      if (event.waiters_.empty()) event.waiters_.reserve(4);
      event.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait() { return Awaiter{*this}; }

 private:
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel between coroutines.
///
/// Invariant: at most one of (buffered items, suspended consumers) is
/// non-empty.  Hand-off goes through the event queue so a push never runs
/// consumer code inline.
template <typename T>
class CoQueue {
 public:
  void push(Simulator& s, T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.slot->emplace(std::move(value));
      s.schedule_now([h = w.handle] { h.resume(); });
      return;
    }
    items_.push_back(std::move(value));
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool has_waiters() const { return !waiters_.empty(); }

  /// Non-blocking pop (for poll-with-timeout protocols).
  [[nodiscard]] std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// The hand-off slot lives inside the awaiter, which lives inside the
  /// suspended consumer's coroutine frame — stable for exactly as long
  /// as a producer might fill it.  (The original design heap-allocated a
  /// shared slot per blocking pop; on the PVM receive path that was one
  /// malloc per message.)
  struct PopAwaiter {
    CoQueue& queue;
    std::optional<T> slot{};

    bool await_ready() noexcept {
      if (queue.items_.empty()) return false;
      slot.emplace(std::move(queue.items_.front()));
      queue.items_.pop_front();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      queue.waiters_.push_back(Waiter{h, &slot});
    }
    T await_resume() {
      assert(slot.has_value());
      return std::move(*slot);
    }
  };

  /// Awaitable removing the next item, FIFO among waiting consumers.
  [[nodiscard]] PopAwaiter pop() { return PopAwaiter{*this}; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

/// Cyclic barrier for n coroutine participants.
class CoBarrier {
 public:
  explicit CoBarrier(std::size_t parties) : parties_(parties) {
    waiting_.reserve(parties);
  }

  [[nodiscard]] std::size_t parties() const { return parties_; }

  struct Awaiter {
    CoBarrier& barrier;
    Simulator& simulator;

    bool await_ready() const noexcept {
      return barrier.parties_ <= 1;  // degenerate barrier never blocks
    }
    bool await_suspend(std::coroutine_handle<> h) {
      barrier.waiting_.push_back(h);
      if (barrier.waiting_.size() == barrier.parties_) {
        for (auto w : barrier.waiting_) {
          simulator.schedule_now([w] { w.resume(); });
        }
        barrier.waiting_.clear();
        ++barrier.generation_;
      }
      return true;  // last arriver also resumes via the event queue
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable that releases everyone once all parties have arrived.
  [[nodiscard]] Awaiter arrive_and_wait(Simulator& s) {
    return Awaiter{*this, s};
  }

  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  std::size_t parties_;
  std::vector<std::coroutine_handle<>> waiting_;
  std::uint64_t generation_ = 0;
};

}  // namespace fxtraf::sim
