// The discrete-event simulator driving every fxtraf experiment.
//
// Single-threaded: events fire strictly in (time, insertion) order, so all
// model state may be touched without synchronization and every run is
// bit-reproducible given the same seed.
#pragma once

#include <cstdint>
#include <utility>

#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "simcore/time.hpp"

namespace fxtraf::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedules `action` at an absolute instant (must not be in the past).
  EventId schedule_at(SimTime at, EventQueue::Action action);

  /// Schedules `action` after `delay` (clamped to now for negative values).
  EventId schedule_in(Duration delay, EventQueue::Action action);

  /// Schedules `action` at the current instant, after already-queued
  /// same-time events (used to break call chains deterministically).
  EventId schedule_now(EventQueue::Action action);

  /// Schedules a *background* event: it fires normally while the run is
  /// alive, but never keeps the simulator running on its own (service
  /// heartbeats such as pvmd keepalives use this).
  EventId schedule_in_background(Duration delay, EventQueue::Action action);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until no foreground events remain or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs until simulated time would exceed `deadline` (events at exactly
  /// `deadline` still fire, background ones included); advances now() to
  /// `deadline` if reached.  Unlike run(), background-only states keep
  /// executing until the deadline.
  std::uint64_t run_until(SimTime deadline);

  /// Requests the run loop to return after the current event.
  void stop() { stopping_ = true; }

  [[nodiscard]] bool pending_events() { return !queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Timestamp of the earliest live event (infinity when empty).  The
  /// PDES coordinator polls this at window barriers to compute the next
  /// global safe window.
  [[nodiscard]] SimTime next_event_time() { return queue_.next_time(); }
  /// Live foreground events — the run()-keeps-going count.  Summed
  /// across shards by the PDES coordinator for the termination check.
  [[nodiscard]] std::size_t foreground_count() const {
    return queue_.foreground_count();
  }

  /// Scheduler health: how many events were scheduled/cancelled and how
  /// many closures spilled past the inline action buffer.  A steady
  /// allocations_per_event() near zero is the hot-path contract; campaign
  /// reports surface it so a regression (an oversized closure sneaking
  /// into a timer path) is visible in every run.
  [[nodiscard]] const EventQueueStats& scheduler_stats() const {
    return queue_.stats();
  }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  Rng rng_;
  bool stopping_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace fxtraf::sim
