// Simulated time for the fxtraf discrete-event simulator.
//
// Time is kept as integer nanoseconds since simulation start so that long
// traces (the AIRSHED run simulates thousands of seconds) accumulate no
// floating-point drift.  `SimTime` is an absolute instant, `Duration` a
// signed difference; both are strong types so they cannot be mixed with
// raw integers by accident.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace fxtraf::sim {

/// A signed span of simulated time, in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(ns_) * 1e-3;
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }

  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return a * k;
  }
  friend constexpr std::int64_t operator/(Duration a, Duration b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  std::int64_t ns_ = 0;
};

/// An absolute instant of simulated time (nanoseconds since t=0).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  /// Sentinel later than any reachable instant.
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime{INT64_MAX};
  }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.ns_ + d.ns()};
  }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.ns_ - d.ns()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  std::int64_t ns_ = 0;
};

// Duration literal-style factories.  Fractional inputs are rounded to the
// nearest nanosecond.
[[nodiscard]] constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
[[nodiscard]] constexpr Duration micros(double us) {
  return Duration{static_cast<std::int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration millis(double ms) {
  return Duration{static_cast<std::int64_t>(ms * 1e6 + (ms >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

/// "12.345678s"-style rendering used by the logger and trace dumps.
[[nodiscard]] std::string to_string(SimTime t);
[[nodiscard]] std::string to_string(Duration d);

}  // namespace fxtraf::sim
