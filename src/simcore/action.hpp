// Small-buffer-optimized, move-only callable for scheduled events.
//
// Every event the simulator fires is a closure captured at schedule time.
// The std::function the event queue originally used has a 16-byte inline
// buffer in libstdc++, so any capture beyond two pointers — a coroutine
// handle plus context, a timer with its connection — fell back to the
// heap, and the copyable-callable requirement forbade holding move-only
// state at all.  UniqueAction keeps 48 bytes inline (every closure the
// hot path schedules today fits), requires only move-constructibility,
// and reports whether a given callable spilled to the heap so the event
// queue can account allocations per event exactly.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fxtraf::sim {

class UniqueAction {
 public:
  /// Inline capture capacity: three cache-line quarters, enough for a
  /// `this` pointer plus five words of context without touching malloc.
  static constexpr std::size_t kInlineBytes = 48;

  UniqueAction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  UniqueAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      relocate_ = [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      };
      destroy_ = [](void* p) { delete *static_cast<Fn**>(p); };
      heap_backed_ = true;
    }
  }

  UniqueAction(UniqueAction&& other) noexcept { steal(other); }

  UniqueAction& operator=(UniqueAction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueAction(const UniqueAction&) = delete;
  UniqueAction& operator=(const UniqueAction&) = delete;

  ~UniqueAction() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the callable was too large (or not nothrow-movable) for
  /// the inline buffer and lives behind a pointer.  The event queue sums
  /// this into its allocations-per-event accounting.
  [[nodiscard]] bool heap_backed() const { return heap_backed_; }

  void reset() {
    if (invoke_) {
      destroy_(storage_);
      invoke_ = nullptr;
      relocate_ = nullptr;
      destroy_ = nullptr;
      heap_backed_ = false;
    }
  }

 private:
  void steal(UniqueAction& other) noexcept {
    if (!other.invoke_) return;
    other.relocate_(storage_, other.storage_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    heap_backed_ = other.heap_backed_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
    other.heap_backed_ = false;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
  bool heap_backed_ = false;
};

}  // namespace fxtraf::sim
