// Deterministic random number generation for the simulator.
//
// Every stochastic element (Ethernet backoff, OS deschedule injection,
// synthetic traffic jitter) draws from an `Rng` seeded from the experiment
// configuration, so runs are exactly reproducible.  The generator is
// xoshiro256**, seeded through splitmix64 per the reference construction.
#pragma once

#include <cstdint>
#include <cmath>

namespace fxtraf::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the single seed word into generator state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) with rejection to remove modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponential variate with the given mean.
  double next_exponential(double mean) {
    // 1 - u avoids log(0).
    return -mean * std::log1p(-next_double());
  }

  /// Uniform double in [lo, hi).
  double next_uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Derive an independent stream for a named subsystem.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) {
    return Rng{next_u64() ^ (0xd1342543de82ef95ULL * (stream_id + 1))};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fxtraf::sim
