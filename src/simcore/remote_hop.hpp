// Cross-shard event posting for parallel-in-trial (PDES) execution.
//
// A RemoteHop is the one-way door between two logical-process shards:
// model code running on the sending shard hands over a closure stamped
// with an absolute execution time, and the PDES engine injects it into
// the receiving shard's EventQueue at the next window barrier.  The
// timestamp must be at least the engine's lookahead ahead of the
// sender's clock — that is what makes the conservative window protocol
// safe — and implementations assert it.
//
// Model layers (ethernet, pvm) depend only on this interface; the
// engine in src/pdes provides the implementation, and serial trials
// never see a hop at all.
#pragma once

#include "simcore/action.hpp"
#include "simcore/time.hpp"

namespace fxtraf::sim {

class RemoteHop {
 public:
  virtual ~RemoteHop() = default;

  /// Enqueues `action` to run at absolute time `at` on the receiving
  /// shard.  Must be called only from the owning (sending) shard's
  /// worker thread, with `at >= sender now + engine lookahead`.
  virtual void post(SimTime at, UniqueAction action) = 0;
};

}  // namespace fxtraf::sim
