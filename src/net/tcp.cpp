#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "net/stack.hpp"
#include "simcore/log.hpp"

namespace fxtraf::net {

TcpConnection::TcpConnection(sim::Simulator& simulator, Stack& stack,
                             HostId local, std::uint16_t local_port,
                             HostId remote, std::uint16_t remote_port,
                             const TcpConfig& config)
    : sim_(simulator),
      stack_(stack),
      local_(local),
      remote_(remote),
      local_port_(local_port),
      remote_port_(remote_port),
      config_(config) {
  cwnd_bytes_ = config_.slow_start
                    ? config_.initial_cwnd_segments * config_.mss
                    : config_.window_bytes;
  rto_current_ = config_.retransmit_timeout;
}

sim::Co<void> TcpConnection::connect() {
  assert(state_ == State::kClosed);
  state_ = State::kSynSent;
  emit_segment(/*seq=*/0, /*payload=*/0, /*syn=*/true, /*force_ack=*/false);
  arm_retransmit_timer();
  co_await established_.wait();
  if (aborted_) throw ConnectionAborted(abort_reason_);
}

void TcpConnection::on_passive_open() {
  assert(state_ == State::kClosed);
  state_ = State::kSynReceived;
  // SYN+ACK.
  emit_segment(/*seq=*/0, /*payload=*/0, /*syn=*/true, /*force_ack=*/true);
}

void TcpConnection::send(std::size_t bytes) {
  if (bytes == 0 || aborted_) return;
  write_queue_.push_back(bytes);
  total_written_ += bytes;
  pump();
}

TcpConnection::WriteAwaiter TcpConnection::write(std::size_t bytes) {
  return WriteAwaiter{*this, bytes};
}

TcpConnection::RecvAwaiter TcpConnection::recv(std::size_t bytes) {
  return RecvAwaiter{*this, bytes};
}

TcpConnection::DrainAwaiter TcpConnection::wait_drained() {
  return DrainAwaiter{*this};
}

void TcpConnection::pump() {
  if (state_ != State::kEstablished) return;
  const std::size_t effective_window =
      std::min(config_.window_bytes, cwnd_bytes_);
  while (!write_queue_.empty()) {
    const std::uint64_t inflight = snd_nxt_ - snd_una_;
    if (inflight >= effective_window) break;
    const std::size_t window_space =
        effective_window - static_cast<std::size_t>(inflight);
    const std::size_t write_remaining =
        write_queue_.front() - front_write_offset_;
    const std::size_t payload = std::min(config_.mss, write_remaining);
    // Silly-window avoidance: never split a segment just because the
    // receive window is nearly full — wait for an ACK to open it.  Safe
    // because the window is always at least one MSS wide.
    if (payload > window_space) break;

    // Karn discipline: time at most one in-flight segment, and only a
    // fresh (never retransmitted) one.
    if (config_.adaptive_rto && !rtt_timing_) {
      rtt_timing_ = true;
      rtt_seq_ = snd_nxt_ + payload;
      rtt_sent_at_ = sim_.now();
    }
    emit_segment(snd_nxt_, payload, /*syn=*/false, /*force_ack=*/false);
    unacked_.push_back(UnackedSegment{snd_nxt_, payload});
    snd_nxt_ += payload;
    front_write_offset_ += payload;
    if (front_write_offset_ == write_queue_.front()) {
      write_queue_.pop_front();
      front_write_offset_ = 0;
    }
    ensure_retransmit_timer();
  }
}

void TcpConnection::emit_segment(std::uint64_t seq, std::size_t payload,
                                 bool syn, bool force_ack) {
  IpDatagram d;
  d.src = local_;
  d.dst = remote_;
  d.proto = IpProto::kTcp;
  d.src_port = local_port_;
  d.dst_port = remote_port_;
  d.payload_bytes = payload;
  d.tcp.seq = seq;
  d.tcp.syn = syn;
  d.tcp.window = static_cast<std::uint32_t>(config_.window_bytes);
  // Piggyback the acknowledgment on everything after the initial SYN.
  d.tcp.has_ack = force_ack || !syn || state_ != State::kSynSent;
  d.tcp.ack = rcv_nxt_;

  if (d.tcp.has_ack) {
    // Any ack-bearing segment satisfies the delayed-ack obligation.
    if (delack_armed_) {
      sim_.cancel(delack_event_);
      delack_armed_ = false;
    }
    segments_since_ack_ = 0;
  }

  if (payload > 0) {
    ++stats_.segments_sent;
    stats_.bytes_sent += payload;
  } else if (!syn) {
    ++stats_.pure_acks_sent;
  }
  stack_.transmit(std::move(d));
}

void TcpConnection::send_pure_ack() {
  emit_segment(snd_nxt_, 0, /*syn=*/false, /*force_ack=*/true);
}

void TcpConnection::arm_retransmit_timer() {
  if (rto_armed_) sim_.cancel(rto_event_);
  rto_event_ =
      sim_.schedule_in(rto_current_, [this] { on_retransmit_timeout(); });
  rto_armed_ = true;
  armed_for_seq_ = unacked_.empty() ? 0 : unacked_.front().seq;
}

void TcpConnection::ensure_retransmit_timer() {
  if (unacked_.empty()) {
    cancel_retransmit_timer();
    return;
  }
  if (rto_armed_ && armed_for_seq_ == unacked_.front().seq) return;
  arm_retransmit_timer();
}

void TcpConnection::cancel_retransmit_timer() {
  if (rto_armed_) {
    sim_.cancel(rto_event_);
    rto_armed_ = false;
  }
}

void TcpConnection::note_rtt_sample(sim::Duration sample) {
  if (!have_rtt_sample_) {
    srtt_ = sample;
    rttvar_ = sim::Duration{sample.ns() / 2};
    have_rtt_sample_ = true;
    return;
  }
  // RFC 6298: RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R'|,
  //           SRTT   <- 7/8 SRTT   + 1/8 R'.
  const std::int64_t err = std::llabs(srtt_.ns() - sample.ns());
  rttvar_ = sim::Duration{(3 * rttvar_.ns() + err) / 4};
  srtt_ = sim::Duration{(7 * srtt_.ns() + sample.ns()) / 8};
}

sim::Duration TcpConnection::computed_rto() const {
  if (!config_.adaptive_rto || !have_rtt_sample_) {
    return config_.retransmit_timeout;
  }
  const std::int64_t var_term =
      std::max<std::int64_t>(sim::millis(1).ns(), 4 * rttvar_.ns());
  return std::clamp(sim::Duration{srtt_.ns() + var_term}, config_.min_rto,
                    config_.max_rto);
}

void TcpConnection::go_back_n(const char* why) {
  // Go-back-N: re-emit every unacknowledged segment with its original
  // boundaries (the receiver discards out-of-order data, so resending
  // only the head would leave the rest to the next timeout anyway).
  sim::Logger::log(sim::LogLevel::kDebug, sim_.now(), "tcp",
                   "%u:%u %s, retransmitting %zu segments", local_,
                   local_port_, why, unacked_.size());
  rtt_timing_ = false;  // Karn: no samples from retransmitted segments
  for (const UnackedSegment& seg : unacked_) {
    ++stats_.retransmissions;
    emit_segment(seg.seq, seg.len, /*syn=*/false, /*force_ack=*/false);
  }
}

void TcpConnection::abort_connection(const std::string& reason) {
  if (aborted_) return;
  aborted_ = true;
  ++stats_.aborts;
  abort_reason_ = reason;
  if (config_.abort_hook) {
    config_.abort_hook(sim_.now(), local_, remote_, reason);
  }
  state_ = State::kClosed;
  cancel_retransmit_timer();
  if (delack_armed_) {
    sim_.cancel(delack_event_);
    delack_armed_ = false;
  }
  write_queue_.clear();
  unacked_.clear();
  sim::Logger::log(sim::LogLevel::kWarn, sim_.now(), "tcp",
                   "%u:%u -> %u:%u aborted: %s", local_, local_port_,
                   remote_, remote_port_, reason.c_str());
  // Wake every parked coroutine; their awaiters observe aborted_ and
  // throw ConnectionAborted instead of hanging on a dead peer.
  established_.set(sim_);
  for (const RecvWaiter& w : recv_waiters_) {
    sim_.schedule_now([h = w.handle] { h.resume(); });
  }
  recv_waiters_.clear();
  for (const WriteWaiter& w : write_waiters_) {
    sim_.schedule_now([h = w.handle] { h.resume(); });
  }
  write_waiters_.clear();
  for (auto h : drain_waiters_) {
    sim_.schedule_now([h] { h.resume(); });
  }
  drain_waiters_.clear();
}

void TcpConnection::on_retransmit_timeout() {
  rto_armed_ = false;
  ++stats_.timeouts;
  ++consecutive_timeouts_;
  if (config_.max_retries > 0 &&
      consecutive_timeouts_ > config_.max_retries) {
    abort_connection(state_ == State::kSynSent
                         ? "connect: no SYN+ACK after " +
                               std::to_string(config_.max_retries) +
                               " retries (peer down or unreachable)"
                         : "retransmission limit: " +
                               std::to_string(config_.max_retries) +
                               " consecutive timeouts with " +
                               std::to_string(unacked_.size()) +
                               " segments outstanding");
    return;
  }
  // Karn: exponential backoff; the estimator catches up after recovery.
  rto_current_ = std::min(sim::Duration{rto_current_.ns() * 2},
                          config_.max_rto);
  rtt_timing_ = false;
  if (state_ == State::kSynSent) {
    emit_segment(0, 0, /*syn=*/true, /*force_ack=*/false);
    arm_retransmit_timer();
    return;
  }
  if (unacked_.empty()) return;
  if (config_.slow_start) {
    // Timeout: collapse the congestion window (classic slow start).
    cwnd_bytes_ = config_.initial_cwnd_segments * config_.mss;
  }
  in_recovery_ = true;  // stale duplicates must not trigger another burst
  recover_ = snd_nxt_;
  go_back_n("rto");
  arm_retransmit_timer();
}

void TcpConnection::arm_delayed_ack() {
  if (delack_armed_) return;
  delack_armed_ = true;
  delack_event_ = sim_.schedule_in(config_.delayed_ack_timeout, [this] {
    delack_armed_ = false;
    send_pure_ack();
  });
}

void TcpConnection::on_segment(const IpDatagram& d) {
  assert(d.proto == IpProto::kTcp);
  if (aborted_) return;  // dead endpoint: ignore late segments
  const TcpSegmentInfo& seg = d.tcp;

  // --- Handshake progression ---------------------------------------
  if (seg.syn) {
    if (state_ == State::kSynSent && seg.has_ack) {
      // SYN+ACK: complete with a pure ACK.
      state_ = State::kEstablished;
      cancel_retransmit_timer();
      consecutive_timeouts_ = 0;
      rto_current_ = computed_rto();
      send_pure_ack();
      established_.set(sim_);
      if (established_hook_) established_hook_();
      pump();
    } else if (state_ == State::kSynReceived) {
      // Duplicate SYN (our SYN+ACK was lost): resend it.
      emit_segment(0, 0, /*syn=*/true, /*force_ack=*/true);
    }
    return;
  }
  if (state_ == State::kSynReceived && seg.has_ack) {
    state_ = State::kEstablished;
    established_.set(sim_);
    if (established_hook_) established_hook_();
    pump();
    // Fall through: the ACK may carry data in theory (not in our model).
  }
  if (state_ != State::kEstablished) return;

  // --- Sender side: process acknowledgment --------------------------
  if (seg.has_ack && seg.ack > snd_una_) {
    if (rtt_timing_ && seg.ack >= rtt_seq_) {
      note_rtt_sample(sim_.now() - rtt_sent_at_);
      rtt_timing_ = false;
    }
    snd_una_ = seg.ack;
    consecutive_timeouts_ = 0;
    dup_acks_ = 0;
    if (in_recovery_ && snd_una_ >= recover_) in_recovery_ = false;
    rto_current_ = computed_rto();
    if (config_.slow_start && cwnd_bytes_ < config_.window_bytes) {
      cwnd_bytes_ = std::min(cwnd_bytes_ + config_.mss,
                             config_.window_bytes);
    }
    while (!unacked_.empty() &&
           unacked_.front().seq + unacked_.front().len <= snd_una_) {
      unacked_.pop_front();
    }
    ensure_retransmit_timer();
    try_release_drainers();
    try_admit_writers();
    pump();
  } else if (seg.has_ack && seg.ack == snd_una_ && !unacked_.empty() &&
             d.payload_bytes == 0 && config_.dupack_threshold > 0 &&
             !in_recovery_) {
    // A pure ACK that does not advance while data is outstanding: the
    // receiver saw an out-of-order arrival (something before it died).
    ++stats_.dup_acks;
    if (++dup_acks_ == config_.dupack_threshold) {
      dup_acks_ = 0;
      ++stats_.fast_retransmits;
      in_recovery_ = true;
      recover_ = snd_nxt_;
      go_back_n("fast retransmit");
      arm_retransmit_timer();  // restart the clock for the resent head
    }
  }

  // --- Receiver side: process payload --------------------------------
  if (d.payload_bytes == 0) return;
  if (seg.seq == rcv_nxt_) {
    rcv_nxt_ += d.payload_bytes;
    stats_.bytes_received += d.payload_bytes;
    deliver_to_app(d.payload_bytes);
    ++segments_since_ack_;
    if (segments_since_ack_ >= config_.ack_every_segments) {
      send_pure_ack();
    } else {
      arm_delayed_ack();
    }
  } else {
    // Out-of-order (a preceding frame died) or duplicate: discard and
    // re-advertise our expectation immediately.  These immediate pure
    // ACKs are what the peer counts as duplicates for fast retransmit.
    send_pure_ack();
  }
}

void TcpConnection::deliver_to_app(std::size_t bytes) {
  recv_available_ += bytes;
  try_satisfy_receivers();
}

void TcpConnection::try_satisfy_receivers() {
  while (!recv_waiters_.empty() &&
         recv_available_ >= recv_waiters_.front().needed) {
    RecvWaiter waiter = recv_waiters_.front();
    recv_waiters_.pop_front();
    recv_available_ -= waiter.needed;
    sim_.schedule_now([h = waiter.handle] { h.resume(); });
  }
}

void TcpConnection::try_admit_writers() {
  while (!write_waiters_.empty() && write_fits(write_waiters_.front().bytes)) {
    WriteWaiter waiter = write_waiters_.front();
    write_waiters_.pop_front();
    send(waiter.bytes);
    sim_.schedule_now([h = waiter.handle] { h.resume(); });
  }
}

void TcpConnection::try_release_drainers() {
  if (snd_una_ != total_written_) return;
  for (auto h : drain_waiters_) {
    sim_.schedule_now([h] { h.resume(); });
  }
  drain_waiters_.clear();
}

}  // namespace fxtraf::net
