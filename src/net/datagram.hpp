// Wire-format description of simulated IP datagrams.
//
// fxtraf does not move real bytes; a datagram is a metadata record whose
// sizes drive transmission timing and whose fields drive demultiplexing
// and trace capture.  Recorded packet sizes follow the paper's convention:
// data + TCP/UDP header + IP header + Ethernet header and trailer, which
// gives the familiar 58-byte minimum (pure TCP ACK) and 1518-byte maximum.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace fxtraf::net {

/// Identifies a workstation on the LAN; doubles as its IP address.
using HostId = std::uint16_t;

inline constexpr std::size_t kIpHeaderBytes = 20;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;

enum class IpProto : std::uint8_t { kTcp, kUdp };

[[nodiscard]] constexpr const char* to_string(IpProto p) {
  return p == IpProto::kTcp ? "tcp" : "udp";
}

/// TCP control information carried by a segment.
struct TcpSegmentInfo {
  std::uint64_t seq = 0;  ///< first payload byte's sequence number
  std::uint64_t ack = 0;  ///< cumulative acknowledgement
  std::uint32_t window = 0;
  bool syn = false;
  bool fin = false;
  bool has_ack = false;
};

struct IpDatagram {
  HostId src = 0;
  HostId dst = 0;
  IpProto proto = IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::size_t payload_bytes = 0;  ///< transport-layer payload only
  TcpSegmentInfo tcp;             ///< meaningful iff proto == kTcp
  /// Application-level sequence/tag carried *inside* the payload (e.g.
  /// the pvmd fragment sequence number); pure model metadata, occupies
  /// no extra wire bytes.
  std::uint64_t app_seq = 0;

  [[nodiscard]] std::size_t transport_header_bytes() const {
    return proto == IpProto::kTcp ? kTcpHeaderBytes : kUdpHeaderBytes;
  }
  /// IP datagram size: IP header + transport header + payload.
  [[nodiscard]] std::size_t total_bytes() const {
    return kIpHeaderBytes + transport_header_bytes() + payload_bytes;
  }
};

using DatagramPtr = std::shared_ptr<const IpDatagram>;

}  // namespace fxtraf::net
