#include "net/stack.hpp"

#include <cassert>
#include <stdexcept>

#include "ethernet/frame.hpp"
#include "ethernet/frame_pool.hpp"
#include "simcore/log.hpp"

namespace fxtraf::net {

Stack::Stack(sim::Simulator& simulator, LinkLayer& link, TcpConfig tcp_config)
    : sim_(simulator), link_(link), tcp_config_(tcp_config) {
  link_.set_receive_handler([this](const eth::Frame& f) { on_frame(f); });
}

void Stack::transmit(IpDatagram datagram) {
  datagram.src = host();
  assert(datagram.total_bytes() <= eth::kMaxIpPayloadBytes &&
         "datagram exceeds MTU; transport must segment");
  eth::Frame frame;
  frame.src = host();
  frame.dst = datagram.dst;
  frame.datagram = eth::make_pooled_datagram(std::move(datagram));
  link_.send(std::move(frame));
}

void Stack::udp_bind(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Stack::udp_send(HostId dst, std::uint16_t src_port,
                     std::uint16_t dst_port, std::size_t payload_bytes,
                     std::uint64_t app_seq) {
  IpDatagram d;
  d.dst = dst;
  d.proto = IpProto::kUdp;
  d.src_port = src_port;
  d.dst_port = dst_port;
  d.payload_bytes = payload_bytes;
  d.app_seq = app_seq;
  transmit(std::move(d));
}

TcpConnection& Stack::tcp_connect(HostId remote, std::uint16_t remote_port) {
  const std::uint16_t local_port = allocate_ephemeral_port();
  auto connection = std::make_unique<TcpConnection>(
      sim_, *this, host(), local_port, remote, remote_port, tcp_config_);
  TcpConnection& ref = *connection;
  connections_.emplace(ConnKey{local_port, remote, remote_port},
                       std::move(connection));
  return ref;
}

Stack::AcceptQueue& Stack::tcp_listen(std::uint16_t port) {
  auto [it, inserted] =
      listeners_.emplace(port, std::make_unique<AcceptQueue>());
  if (!inserted) throw std::logic_error("tcp_listen: port already bound");
  return *it->second;
}

TcpStats Stack::tcp_totals() const {
  TcpStats total;
  for (const auto& [key, conn] : connections_) {
    const TcpStats& s = conn->stats();
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
    total.segments_sent += s.segments_sent;
    total.pure_acks_sent += s.pure_acks_sent;
    total.retransmissions += s.retransmissions;
    total.timeouts += s.timeouts;
    total.fast_retransmits += s.fast_retransmits;
    total.dup_acks += s.dup_acks;
    total.aborts += s.aborts;
  }
  return total;
}

void Stack::on_frame(const eth::Frame& frame) {
  const IpDatagram& d = *frame.datagram;
  if (d.dst != host()) return;  // promiscuous noise
  if (inbound_filter_ && !inbound_filter_(d)) {
    ++inbound_filtered_;  // crashed host: traffic dies at the interface
    return;
  }
  switch (d.proto) {
    case IpProto::kUdp: {
      auto it = udp_handlers_.find(d.dst_port);
      if (it != udp_handlers_.end()) it->second(d);
      break;
    }
    case IpProto::kTcp:
      on_tcp(d);
      break;
  }
}

void Stack::on_tcp(const IpDatagram& d) {
  const ConnKey key{d.dst_port, d.src, d.src_port};
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    if (!d.tcp.syn) return;  // stray segment for a connection we dropped
    auto listener = listeners_.find(d.dst_port);
    if (listener == listeners_.end()) return;  // no listener: silently drop

    auto connection = std::make_unique<TcpConnection>(
        sim_, *this, host(), d.dst_port, d.src, d.src_port, tcp_config_);
    TcpConnection* raw = connection.get();
    AcceptQueue* queue = listener->second.get();
    raw->set_established_hook(
        [this, raw, queue] { queue->push(sim_, raw); });
    // on_passive_open replies SYN+ACK; the triggering SYN carries nothing
    // else, so it is fully consumed here.
    raw->on_passive_open();
    connections_.emplace(key, std::move(connection));
    return;
  }
  it->second->on_segment(d);
}

}  // namespace fxtraf::net
