// Simplified TCP for the simulated LAN.
//
// Faithful where it shapes traffic, simple where it does not:
//   - MSS segmentation with write-boundary preservation (Nagle off, as
//     PVM sets TCP_NODELAY): each application write is segmented
//     independently, which is what makes PVM fragment-list messages
//     (T2DFFT, paper section 4) produce many non-maximal packets;
//   - fixed advertised receive window (no congestion control: a 1998
//     office LAN's TCPs were ACK-clocked against a 32 KB window);
//   - delayed ACKs, ack-every-other-segment (BSD behaviour), producing
//     the pure 58-byte ACK mode of the paper's trimodal size histograms;
//   - go-back-N retransmission on a fixed RTO, enough to recover the rare
//     excessive-collision frame drop.
#pragma once

#include <cstdint>
#include <coroutine>
#include <deque>
#include <functional>

#include "net/datagram.hpp"
#include "simcore/coro.hpp"
#include "simcore/simulator.hpp"

namespace fxtraf::net {

class Stack;

struct TcpConfig {
  std::size_t mss = 1460;
  std::size_t window_bytes = 32768;
  std::size_t send_buffer_bytes = 65536;  ///< socket buffer (write blocks)
  sim::Duration retransmit_timeout = sim::millis(300);
  sim::Duration delayed_ack_timeout = sim::millis(200);
  int ack_every_segments = 2;
  /// Slow start: begin with a small congestion window that opens one MSS
  /// per new ACK (and collapses on RTO).  Off by default: on a one-hop
  /// LAN the era's stacks reached the receive window within a couple of
  /// round trips, and the paper's traffic is window-limited, not
  /// congestion-limited.  Provided for the transport ablation.
  bool slow_start = false;
  std::size_t initial_cwnd_segments = 2;
};

struct TcpStats {
  std::uint64_t bytes_sent = 0;      ///< application payload transmitted
  std::uint64_t bytes_received = 0;  ///< application payload delivered
  std::uint64_t segments_sent = 0;
  std::uint64_t pure_acks_sent = 0;
  std::uint64_t retransmissions = 0;
};

/// One endpoint of a simulated TCP connection.
///
/// Owned by the host's Stack; obtained via Stack::tcp_connect (client) or
/// a listener's accept queue (server).  All methods must be called from
/// simulation context (event handlers or coroutines).
class TcpConnection {
 public:
  TcpConnection(sim::Simulator& simulator, Stack& stack, HostId local,
                std::uint16_t local_port, HostId remote,
                std::uint16_t remote_port, const TcpConfig& config);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  [[nodiscard]] HostId remote_host() const { return remote_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }
  [[nodiscard]] bool established() const { return established_.is_set(); }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }

  /// Client side: sends SYN; completes when the handshake finishes.
  [[nodiscard]] sim::Co<void> connect();

  /// Queues `bytes` of application data as one write.  Returns
  /// immediately; transmission is driven by window and ACK arrival.
  /// Bypasses send-buffer accounting — prefer write() in process code.
  void send(std::size_t bytes);

  /// Blocking write with socket-buffer backpressure: suspends while the
  /// unacknowledged backlog exceeds the send buffer, like a blocking
  /// socket write.  Writers are served FIFO.
  struct WriteAwaiter;
  [[nodiscard]] WriteAwaiter write(std::size_t bytes);

  /// Awaits delivery of exactly `bytes` of in-order application data.
  /// Concurrent receivers are served FIFO.
  struct RecvAwaiter;
  [[nodiscard]] RecvAwaiter recv(std::size_t bytes);

  /// Awaits acknowledgment of everything written so far.
  struct DrainAwaiter;
  [[nodiscard]] DrainAwaiter wait_drained();

  // --- Stack-facing -------------------------------------------------
  void on_segment(const IpDatagram& datagram);
  void on_passive_open();  ///< server endpoint created in response to SYN
  /// Invoked once when the handshake completes (used for accept queues).
  void set_established_hook(std::function<void()> hook) {
    established_hook_ = std::move(hook);
  }

 private:
  enum class State { kClosed, kSynSent, kSynReceived, kEstablished };

  void pump();
  void emit_segment(std::uint64_t seq, std::size_t payload, bool syn,
                    bool force_ack);
  void send_pure_ack();
  void arm_retransmit_timer();
  void cancel_retransmit_timer();
  void on_retransmit_timeout();
  void arm_delayed_ack();
  void deliver_to_app(std::size_t bytes);
  void try_satisfy_receivers();
  void try_release_drainers();
  void try_admit_writers();
  [[nodiscard]] bool write_fits(std::size_t bytes) const {
    const std::uint64_t backlog = total_written_ - snd_una_;
    // Always admit at least one write so oversized writes make progress.
    return backlog == 0 || backlog + bytes <= config_.send_buffer_bytes;
  }

  sim::Simulator& sim_;
  Stack& stack_;
  HostId local_;
  HostId remote_;
  std::uint16_t local_port_;
  std::uint16_t remote_port_;
  TcpConfig config_;
  State state_ = State::kClosed;
  sim::CoEvent established_;
  std::function<void()> established_hook_;

  // Sender state (application-byte sequence space starting at 0).
  std::deque<std::size_t> write_queue_;  ///< pending write sizes
  std::size_t front_write_offset_ = 0;
  std::uint64_t total_written_ = 0;  ///< bytes accepted from the app
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  struct UnackedSegment {
    std::uint64_t seq;
    std::size_t len;
  };
  std::deque<UnackedSegment> unacked_;
  std::size_t cwnd_bytes_ = 0;  ///< congestion window (slow start only)
  sim::EventId rto_event_{};
  bool rto_armed_ = false;

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  int segments_since_ack_ = 0;
  sim::EventId delack_event_{};
  bool delack_armed_ = false;
  std::size_t recv_available_ = 0;
  struct RecvWaiter {
    std::size_t needed;
    std::coroutine_handle<> handle;
  };
  std::deque<RecvWaiter> recv_waiters_;
  std::deque<std::coroutine_handle<>> drain_waiters_;
  struct WriteWaiter {
    std::size_t bytes;
    std::coroutine_handle<> handle;
  };
  std::deque<WriteWaiter> write_waiters_;

  TcpStats stats_;

 public:
  struct RecvAwaiter {
    TcpConnection& connection;
    std::size_t needed;

    // Fast path: consume immediately if data is buffered and nobody is
    // ahead of us in line (await_ready is evaluated exactly once).
    bool await_ready() noexcept {
      if (needed == 0) return true;
      if (connection.recv_waiters_.empty() &&
          connection.recv_available_ >= needed) {
        connection.recv_available_ -= needed;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      connection.recv_waiters_.push_back(RecvWaiter{needed, h});
    }
    void await_resume() const noexcept {
      // Suspended path: try_satisfy_receivers() consumed our bytes before
      // resuming us.
    }
  };

  struct DrainAwaiter {
    TcpConnection& connection;
    bool await_ready() const noexcept {
      return connection.snd_una_ == connection.total_written_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      connection.drain_waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  struct WriteAwaiter {
    TcpConnection& connection;
    std::size_t bytes;

    bool await_ready() noexcept {
      // FIFO fairness: newcomers queue behind existing blocked writers.
      if (connection.write_waiters_.empty() &&
          connection.write_fits(bytes)) {
        connection.send(bytes);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      connection.write_waiters_.push_back(WriteWaiter{bytes, h});
    }
    void await_resume() const noexcept {
      // Suspended path: try_admit_writers() performed the send before
      // resuming us.
    }
  };
};

}  // namespace fxtraf::net
