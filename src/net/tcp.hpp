// Simplified TCP for the simulated LAN.
//
// Faithful where it shapes traffic, simple where it does not:
//   - MSS segmentation with write-boundary preservation (Nagle off, as
//     PVM sets TCP_NODELAY): each application write is segmented
//     independently, which is what makes PVM fragment-list messages
//     (T2DFFT, paper section 4) produce many non-maximal packets;
//   - fixed advertised receive window (no congestion control: a 1998
//     office LAN's TCPs were ACK-clocked against a 32 KB window);
//   - delayed ACKs, ack-every-other-segment (BSD behaviour), producing
//     the pure 58-byte ACK mode of the paper's trimodal size histograms;
//   - go-back-N retransmission on a Jacobson/Karn adaptive RTO
//     (SRTT/RTTVAR, exponential backoff, retry bound) with fast
//     retransmit on triple duplicate ACKs.  min_rto keeps the fault-free
//     timeout at the legacy fixed value, so a clean LAN never sees a
//     spurious retransmission.
#pragma once

#include <cstdint>
#include <coroutine>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>

#include "net/datagram.hpp"
#include "simcore/coro.hpp"
#include "simcore/simulator.hpp"

namespace fxtraf::net {

class Stack;

/// Thrown from connect()/write()/recv()/wait_drained() when the
/// connection gave up (retransmission retry bound exhausted).  Every
/// parked coroutine observes the abort -- a dead peer never leaves a
/// silent hang, it surfaces here with a diagnosis.
class ConnectionAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct TcpConfig {
  std::size_t mss = 1460;
  std::size_t window_bytes = 32768;
  std::size_t send_buffer_bytes = 65536;  ///< socket buffer (write blocks)
  /// Initial RTO; also the fixed RTO when adaptive_rto is off.
  sim::Duration retransmit_timeout = sim::millis(300);
  sim::Duration delayed_ack_timeout = sim::millis(200);
  int ack_every_segments = 2;
  /// Slow start: begin with a small congestion window that opens one MSS
  /// per new ACK (and collapses on RTO).  Off by default: on a one-hop
  /// LAN the era's stacks reached the receive window within a couple of
  /// round trips, and the paper's traffic is window-limited, not
  /// congestion-limited.  Provided for the transport ablation.
  bool slow_start = false;
  std::size_t initial_cwnd_segments = 2;
  /// Jacobson/Karn adaptive RTO (RFC 6298 constants).  The estimator
  /// only ever matters under loss: min_rto pins the floor at the legacy
  /// fixed timeout, so a loss-free trace is bit-identical either way.
  bool adaptive_rto = true;
  sim::Duration min_rto = sim::millis(300);
  sim::Duration max_rto = sim::seconds(8);
  /// Consecutive timeouts on the same outstanding data (or SYN) before
  /// the connection aborts with ConnectionAborted.  <= 0: retry forever
  /// (the pre-fault legacy behaviour).
  int max_retries = 8;
  /// Duplicate ACKs that trigger a fast retransmit (0 disables).
  int dupack_threshold = 3;
  /// Observer invoked once per connection abort, before the parked
  /// coroutines are woken — the telemetry flight recorder's trigger for
  /// "last packets before the connection died".  Copied per connection
  /// with the rest of the config; must outlive every connection.
  std::function<void(sim::SimTime, HostId local, HostId remote,
                     const std::string& reason)>
      abort_hook;
};

struct TcpStats {
  std::uint64_t bytes_sent = 0;      ///< application payload transmitted
  std::uint64_t bytes_received = 0;  ///< application payload delivered
  std::uint64_t segments_sent = 0;
  std::uint64_t pure_acks_sent = 0;
  std::uint64_t retransmissions = 0;  ///< data segments re-emitted
  std::uint64_t timeouts = 0;         ///< RTO expirations
  std::uint64_t fast_retransmits = 0; ///< dup-ACK triggered recoveries
  std::uint64_t dup_acks = 0;         ///< non-advancing pure ACKs received
  std::uint64_t aborts = 0;           ///< connection give-ups (0 or 1)
};

/// One endpoint of a simulated TCP connection.
///
/// Owned by the host's Stack; obtained via Stack::tcp_connect (client) or
/// a listener's accept queue (server).  All methods must be called from
/// simulation context (event handlers or coroutines).
class TcpConnection {
 public:
  TcpConnection(sim::Simulator& simulator, Stack& stack, HostId local,
                std::uint16_t local_port, HostId remote,
                std::uint16_t remote_port, const TcpConfig& config);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  [[nodiscard]] HostId remote_host() const { return remote_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }
  [[nodiscard]] bool established() const {
    return state_ == State::kEstablished;
  }
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] const std::string& abort_reason() const {
    return abort_reason_;
  }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  /// Current smoothed RTT estimate (zero until the first sample).
  [[nodiscard]] sim::Duration srtt() const { return srtt_; }

  /// Client side: sends SYN; completes when the handshake finishes.
  /// Throws ConnectionAborted if the SYN retry bound is exhausted.
  [[nodiscard]] sim::Co<void> connect();

  /// Queues `bytes` of application data as one write.  Returns
  /// immediately; transmission is driven by window and ACK arrival.
  /// Bypasses send-buffer accounting — prefer write() in process code.
  void send(std::size_t bytes);

  /// Blocking write with socket-buffer backpressure: suspends while the
  /// unacknowledged backlog exceeds the send buffer, like a blocking
  /// socket write.  Writers are served FIFO.
  struct WriteAwaiter;
  [[nodiscard]] WriteAwaiter write(std::size_t bytes);

  /// Awaits delivery of exactly `bytes` of in-order application data.
  /// Concurrent receivers are served FIFO.
  struct RecvAwaiter;
  [[nodiscard]] RecvAwaiter recv(std::size_t bytes);

  /// Awaits acknowledgment of everything written so far.
  struct DrainAwaiter;
  [[nodiscard]] DrainAwaiter wait_drained();

  // --- Stack-facing -------------------------------------------------
  void on_segment(const IpDatagram& datagram);
  void on_passive_open();  ///< server endpoint created in response to SYN
  /// Invoked once when the handshake completes (used for accept queues).
  void set_established_hook(std::function<void()> hook) {
    established_hook_ = std::move(hook);
  }

 private:
  enum class State { kClosed, kSynSent, kSynReceived, kEstablished };

  void pump();
  void emit_segment(std::uint64_t seq, std::size_t payload, bool syn,
                    bool force_ack);
  void send_pure_ack();
  void arm_retransmit_timer();
  /// Re-arms only when the oldest unacked segment changed; cancels when
  /// nothing is outstanding.  (The legacy code cancelled + rescheduled
  /// on every ACK even with an unchanged queue head.)
  void ensure_retransmit_timer();
  void cancel_retransmit_timer();
  void on_retransmit_timeout();
  void arm_delayed_ack();
  void deliver_to_app(std::size_t bytes);
  void try_satisfy_receivers();
  void try_release_drainers();
  void try_admit_writers();
  void note_rtt_sample(sim::Duration sample);
  [[nodiscard]] sim::Duration computed_rto() const;
  void go_back_n(const char* why);
  void abort_connection(const std::string& reason);
  [[nodiscard]] bool write_fits(std::size_t bytes) const {
    const std::uint64_t backlog = total_written_ - snd_una_;
    // Always admit at least one write so oversized writes make progress.
    return backlog == 0 || backlog + bytes <= config_.send_buffer_bytes;
  }

  sim::Simulator& sim_;
  Stack& stack_;
  HostId local_;
  HostId remote_;
  std::uint16_t local_port_;
  std::uint16_t remote_port_;
  TcpConfig config_;
  State state_ = State::kClosed;
  bool aborted_ = false;
  std::string abort_reason_;
  sim::CoEvent established_;
  std::function<void()> established_hook_;

  // Sender state (application-byte sequence space starting at 0).
  std::deque<std::size_t> write_queue_;  ///< pending write sizes
  std::size_t front_write_offset_ = 0;
  std::uint64_t total_written_ = 0;  ///< bytes accepted from the app
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  struct UnackedSegment {
    std::uint64_t seq;
    std::size_t len;
  };
  std::deque<UnackedSegment> unacked_;
  std::size_t cwnd_bytes_ = 0;  ///< congestion window (slow start only)
  sim::EventId rto_event_{};
  bool rto_armed_ = false;
  std::uint64_t armed_for_seq_ = 0;  ///< queue head covered by the timer

  // RTT estimation (Jacobson), Karn-disciplined: a segment that was
  // retransmitted never yields a sample.
  sim::Duration srtt_{};
  sim::Duration rttvar_{};
  bool have_rtt_sample_ = false;
  bool rtt_timing_ = false;
  std::uint64_t rtt_seq_ = 0;  ///< sample completes when ack covers this
  sim::SimTime rtt_sent_at_{};
  sim::Duration rto_current_{};  ///< backoff-adjusted timeout in force
  int consecutive_timeouts_ = 0;
  int dup_acks_ = 0;
  // NewReno-style recovery gate: after any go-back-N burst, the stale
  // duplicates still in flight would otherwise generate fresh dup-ACK
  // triples and re-trigger full-window retransmission — an amplification
  // storm that can jam the shared segment.  One burst per window: no new
  // fast retransmit until the ACK clock passes the recovery point.
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;  ///< snd_nxt_ at the moment of the burst

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  int segments_since_ack_ = 0;
  sim::EventId delack_event_{};
  bool delack_armed_ = false;
  std::size_t recv_available_ = 0;
  struct RecvWaiter {
    std::size_t needed;
    std::coroutine_handle<> handle;
  };
  std::deque<RecvWaiter> recv_waiters_;
  std::deque<std::coroutine_handle<>> drain_waiters_;
  struct WriteWaiter {
    std::size_t bytes;
    std::coroutine_handle<> handle;
  };
  std::deque<WriteWaiter> write_waiters_;

  TcpStats stats_;

 public:
  struct RecvAwaiter {
    TcpConnection& connection;
    std::size_t needed;

    // Fast path: consume immediately if data is buffered and nobody is
    // ahead of us in line (await_ready is evaluated exactly once).
    bool await_ready() noexcept {
      if (connection.aborted_) return true;
      if (needed == 0) return true;
      if (connection.recv_waiters_.empty() &&
          connection.recv_available_ >= needed) {
        connection.recv_available_ -= needed;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      connection.recv_waiters_.push_back(RecvWaiter{needed, h});
    }
    void await_resume() const {
      // Suspended path: try_satisfy_receivers() consumed our bytes before
      // resuming us -- unless the connection died while we were parked.
      if (connection.aborted_) {
        throw ConnectionAborted(connection.abort_reason_);
      }
    }
  };

  struct DrainAwaiter {
    TcpConnection& connection;
    bool await_ready() const noexcept {
      return connection.aborted_ ||
             connection.snd_una_ == connection.total_written_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      connection.drain_waiters_.push_back(h);
    }
    void await_resume() const {
      if (connection.aborted_) {
        throw ConnectionAborted(connection.abort_reason_);
      }
    }
  };

  struct WriteAwaiter {
    TcpConnection& connection;
    std::size_t bytes;

    bool await_ready() noexcept {
      if (connection.aborted_) return true;  // await_resume throws
      // FIFO fairness: newcomers queue behind existing blocked writers.
      if (connection.write_waiters_.empty() &&
          connection.write_fits(bytes)) {
        connection.send(bytes);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      connection.write_waiters_.push_back(WriteWaiter{bytes, h});
    }
    void await_resume() const {
      // Suspended path: try_admit_writers() performed the send before
      // resuming us -- unless the connection died while we were parked.
      if (connection.aborted_) {
        throw ConnectionAborted(connection.abort_reason_);
      }
    }
  };
};

}  // namespace fxtraf::net
