// Per-host protocol stack: demultiplexes frames to TCP connections and
// UDP handlers, owns connection state, allocates ephemeral ports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>

#include "ethernet/nic.hpp"
#include "net/datagram.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "simcore/coro.hpp"

namespace fxtraf::net {

class Stack {
 public:
  using UdpHandler = std::function<void(const IpDatagram&)>;
  using AcceptQueue = sim::CoQueue<TcpConnection*>;

  Stack(sim::Simulator& simulator, LinkLayer& link, TcpConfig tcp_config = {});

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  [[nodiscard]] HostId host() const { return link_.address(); }
  [[nodiscard]] const TcpConfig& tcp_config() const { return tcp_config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Crash semantics (fault::Injector): while the filter returns false,
  /// inbound datagrams addressed to this host are discarded before
  /// demultiplexing — the wire carried them, the dead host ignored them.
  using InboundFilter = std::function<bool(const IpDatagram&)>;
  void set_inbound_filter(InboundFilter filter) {
    inbound_filter_ = std::move(filter);
  }
  [[nodiscard]] std::uint64_t inbound_filtered() const {
    return inbound_filtered_;
  }

  /// TCP counters summed over every connection this stack ever owned.
  [[nodiscard]] TcpStats tcp_totals() const;

  /// Hands a datagram to the link layer.
  void transmit(IpDatagram datagram);

  // --- UDP -----------------------------------------------------------
  void udp_bind(std::uint16_t port, UdpHandler handler);
  void udp_send(HostId dst, std::uint16_t src_port, std::uint16_t dst_port,
                std::size_t payload_bytes, std::uint64_t app_seq = 0);

  // --- TCP -----------------------------------------------------------
  /// Creates a client endpoint; the caller must `co_await c.connect()`.
  TcpConnection& tcp_connect(HostId remote, std::uint16_t remote_port);

  /// Starts listening; established inbound connections appear in the
  /// returned queue (stable reference for the stack's lifetime).
  AcceptQueue& tcp_listen(std::uint16_t port);

  [[nodiscard]] std::uint16_t allocate_ephemeral_port() {
    return next_ephemeral_++;
  }

 private:
  // (local port, remote host, remote port) -> connection.
  using ConnKey = std::tuple<std::uint16_t, HostId, std::uint16_t>;

  void on_frame(const eth::Frame& frame);
  void on_tcp(const IpDatagram& datagram);

  sim::Simulator& sim_;
  LinkLayer& link_;
  TcpConfig tcp_config_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, std::unique_ptr<AcceptQueue>> listeners_;
  std::map<std::uint16_t, UdpHandler> udp_handlers_;
  std::uint16_t next_ephemeral_ = 1024;
  InboundFilter inbound_filter_;
  std::uint64_t inbound_filtered_ = 0;
};

}  // namespace fxtraf::net
