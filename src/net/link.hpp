// Link-layer abstraction: the protocol stack runs identically over the
// shared CSMA/CD Ethernet and over the QoS-capable switched network the
// paper's motivation targets (ATM-style LANs with per-connection
// guarantees).
#pragma once

#include <functional>

#include "ethernet/frame.hpp"
#include "net/datagram.hpp"

namespace fxtraf::net {

class LinkLayer {
 public:
  using ReceiveHandler = std::function<void(const eth::Frame&)>;

  virtual ~LinkLayer() = default;

  /// This interface's address (== host id on our flat LAN).
  [[nodiscard]] virtual HostId address() const = 0;

  /// Queues a frame for transmission toward frame.dst.
  virtual void send(eth::Frame frame) = 0;

  /// Installs the upper-layer delivery callback.
  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

}  // namespace fxtraf::net
