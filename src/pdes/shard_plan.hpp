// Topology partitioning for the parallel-in-trial PDES engine.
//
// The plan maps every component of a trial's Topology to a logical
// process ("shard"), each owning its own Simulator and event queue:
//
//   shard 0              — the fabric: every bridge, every uplink, and
//                          the bridge-side endpoint of each access link.
//   shards 1..S-1        — contiguous blocks of hosts, each host with
//                          its NIC, stack, task, daemon, and the
//                          host-side endpoint of its access link.
//
// Only access links are cut by this partition, so the conservative
// lookahead is their minimum latency: no event executed on one shard at
// time t can affect another shard before t + lookahead (a frame needs
// at least a minimum-size transmission plus propagation to cross, and
// the engine posts cross-shard deliveries at transmission *begin*).
//
// The plan is a pure function of (TopologySpec, hosts): worker count
// never changes the shard boundaries, the per-shard seeds, or the
// cross-shard injection order, which is why a trial's trace digest is
// bitwise identical for any sim_threads >= 1.
#pragma once

#include <vector>

#include "ethernet/topology.hpp"
#include "simcore/time.hpp"

namespace fxtraf::pdes {

struct ShardPlan {
  /// Total logical processes, fabric included.  1 means the topology
  /// yields no parallelism (shared bus, or too few hosts).
  int shards = 1;
  int fabric_shard = 0;
  /// Owning shard per host id (fabric_shard when not sharded).
  std::vector<int> host_shard;
  /// Conservative window width: minimum cross-shard latency.
  sim::Duration lookahead = sim::millis(1);
  /// False when the whole trial collapsed into one shard — the engine
  /// still runs (and still matches serial physics), it just cannot use
  /// more than one worker productively.
  bool sharded = false;

  [[nodiscard]] int shard_of(int host) const {
    return host_shard[static_cast<std::size_t>(host)];
  }
};

/// Builds the shard plan for `hosts` stations on `spec`.  Shared-bus
/// topologies (one collision domain = one indivisible process) and
/// degenerate host counts produce a single-shard plan.
[[nodiscard]] ShardPlan plan_shards(const eth::TopologySpec& spec, int hosts);

}  // namespace fxtraf::pdes
