#include "pdes/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <utility>

#include "trace/capture.hpp"

namespace fxtraf::pdes {

namespace {

/// splitmix64 finalizer: decorrelates per-shard simulator seeds from the
/// trial seed.  Purely a function of (seed, shard) — never of workers.
std::uint64_t shard_seed(std::uint64_t seed, int shard) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Shard the current thread is executing a window for (-1 outside the
/// parallel phase).  Thread-local so link taps and the VM's remote-post
/// closure can attribute work without plumbing a shard id through every
/// model layer.
thread_local int tl_current_shard = -1;

}  // namespace

/// Busy-wait barrier with generation counter.  The window cadence is
/// microseconds, so parking threads in the kernel between windows would
/// dominate the run; yield keeps it friendly when workers share cores.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }

 private:
  int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

class Engine::Hop final : public sim::RemoteHop {
 public:
  Hop(Engine& engine, int src, int dst)
      : engine_(engine), src_(src), dst_(dst) {}

  void post(sim::SimTime at, sim::UniqueAction action) override {
    engine_.post_from(src_, dst_, at, std::move(action));
  }

 private:
  Engine& engine_;
  int src_;
  int dst_;
};

Engine::Engine(ShardPlan plan, std::uint64_t seed, int workers)
    : plan_(std::move(plan)),
      workers_(std::clamp(workers, 1, plan_.shards)) {
  shards_.resize(static_cast<std::size_t>(plan_.shards));
  for (int s = 0; s < plan_.shards; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    // Shard 0 (the fabric) keeps the raw trial seed: a single-shard
    // plan is then seeded exactly like a serial trial's simulator.
    shard.sim = std::make_unique<sim::Simulator>(
        s == 0 ? seed : shard_seed(seed, s));
    shard.outbox.resize(static_cast<std::size_t>(plan_.shards));
  }
  hops_.resize(static_cast<std::size_t>(plan_.shards) *
               static_cast<std::size_t>(plan_.shards));
}

Engine::~Engine() = default;

sim::RemoteHop& Engine::hop(int src_shard, int dst_shard) {
  auto& slot =
      hops_[static_cast<std::size_t>(src_shard) *
                static_cast<std::size_t>(plan_.shards) +
            static_cast<std::size_t>(dst_shard)];
  if (!slot) slot = std::make_unique<Hop>(*this, src_shard, dst_shard);
  return *slot;
}

void Engine::post_from(int src_shard, int dst_shard, sim::SimTime at,
                       sim::UniqueAction action) {
  assert(tl_current_shard == src_shard &&
         "cross-shard posts only fire while executing the source shard");
  shards_[static_cast<std::size_t>(src_shard)]
      .outbox[static_cast<std::size_t>(dst_shard)]
      .push_back(RemoteMsg{at, src_shard, std::move(action)});
}

void Engine::post_control(int dst_shard, sim::UniqueAction action) {
  const int src = tl_current_shard;
  if (src < 0) {
    throw std::logic_error(
        "Engine::post_control outside the parallel phase");
  }
  const sim::SimTime at = shard_sim(src).now() + plan_.lookahead;
  if (dst_shard == src) {
    // Same latency as the cross-shard path so 1-vs-N stays bitwise even
    // when a plan change moves two hosts onto the same shard.
    shard_sim(src).schedule_at(at, std::move(action));
  } else {
    post_from(src, dst_shard, at, std::move(action));
  }
}

eth::Tap Engine::delivery_tap() {
  return [this](sim::SimTime at, const eth::Frame& frame) {
    assert(tl_current_shard >= 0 &&
           "deliveries only happen inside the parallel phase");
    shards_[static_cast<std::size_t>(tl_current_shard)].records.push_back(
        trace::make_record(at, frame));
  };
}

void Engine::stage_injections() {
  for (Shard& src : shards_) {
    for (int d = 0; d < plan_.shards; ++d) {
      auto& out = src.outbox[static_cast<std::size_t>(d)];
      if (out.empty()) continue;
      Shard& dst = shards_[static_cast<std::size_t>(d)];
      dst.inject.insert(dst.inject.end(),
                        std::make_move_iterator(out.begin()),
                        std::make_move_iterator(out.end()));
      out.clear();
    }
  }
  for (Shard& shard : shards_) {
    if (shard.inject.size() < 2) continue;
    // Per-source order is already execution order (deterministic), so a
    // stable sort on (timestamp, source) is a worker-count-independent
    // total order.
    std::stable_sort(shard.inject.begin(), shard.inject.end(),
                     [](const RemoteMsg& a, const RemoteMsg& b) {
                       return a.ts != b.ts ? a.ts < b.ts : a.src < b.src;
                     });
  }
}

void Engine::flush_records() {
  if (!consumer_) {
    for (Shard& shard : shards_) shard.records.clear();
    return;
  }
  struct Tagged {
    const trace::PacketRecord* record;
    int shard;
  };
  std::vector<Tagged> merged;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.records.size();
  if (total == 0) return;
  merged.reserve(total);
  for (int s = 0; s < plan_.shards; ++s) {
    for (const trace::PacketRecord& r :
         shards_[static_cast<std::size_t>(s)].records) {
      merged.push_back(Tagged{&r, s});
    }
  }
  // Each sink is time-ordered already; stable sort on (time, shard)
  // yields the same global order for any worker count.  Windows never
  // overlap in record time, so flushing per window preserves it too.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.record->timestamp != b.record->timestamp
                                ? a.record->timestamp < b.record->timestamp
                                : a.shard < b.shard;
                   });
  for (const Tagged& t : merged) {
    consumer_(t.record->timestamp, *t.record);
  }
  for (Shard& shard : shards_) shard.records.clear();
}

void Engine::worker_loop() {
  for (;;) {
    barrier_->arrive_and_wait();
    if (stop_.load(std::memory_order_acquire)) return;
    for (;;) {
      const int s = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= plan_.shards) break;
      Shard& shard = shards_[static_cast<std::size_t>(s)];
      tl_current_shard = s;
      for (RemoteMsg& msg : shard.inject) {
        shard.sim->schedule_at(msg.ts, std::move(msg.action));
      }
      shard.inject.clear();
      shard.sim->run_until(deadline_);
      tl_current_shard = -1;
    }
    barrier_->arrive_and_wait();
  }
}

bool Engine::run(sim::Duration watchdog) {
  if (ran_) throw std::logic_error("Engine::run called twice");
  ran_ = true;
  const bool budgeted = watchdog.ns() > 0;
  const sim::SimTime budget_end = budgeted
                                      ? sim::SimTime::zero() + watchdog
                                      : sim::SimTime::infinity();
  bool watchdog_fired = false;
  stop_.store(false, std::memory_order_release);
  barrier_ = std::make_unique<SpinBarrier>(workers_ + 1);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    pool.emplace_back([this] { worker_loop(); });
  }

  const sim::Duration ns1{1};
  for (;;) {
    // Coordinator section: workers are parked at the start barrier, so
    // every shard's queues, outboxes, and sinks are safe to touch.
    stage_injections();
    flush_records();
    std::size_t fg = 0;
    sim::SimTime m = sim::SimTime::infinity();
    for (Shard& shard : shards_) {
      fg += shard.sim->foreground_count() + shard.inject.size();
      m = std::min(m, shard.sim->next_event_time());
      if (!shard.inject.empty()) m = std::min(m, shard.inject.front().ts);
    }
    if (fg == 0) break;  // global quiescence (serial run() semantics)
    if (m >= budget_end) {
      // Matches the serial watchdog event: work at or past the budget
      // instant never executes.
      watchdog_fired = true;
      break;
    }
    sim::SimTime deadline = m + plan_.lookahead - ns1;
    if (budgeted) deadline = std::min(deadline, budget_end - ns1);
    deadline_ = deadline;
    next_shard_.store(0, std::memory_order_relaxed);
    ++windows_;
    barrier_->arrive_and_wait();  // open the window
    barrier_->arrive_and_wait();  // wait for every shard to finish it
  }

  stop_.store(true, std::memory_order_release);
  barrier_->arrive_and_wait();  // release workers into the stop check
  for (std::thread& t : pool) t.join();
  return watchdog_fired;
}

std::uint64_t Engine::events_executed() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.sim->events_executed();
  return total;
}

sim::EventQueueStats Engine::scheduler_stats() const {
  sim::EventQueueStats total;
  for (const Shard& shard : shards_) {
    const sim::EventQueueStats& s = shard.sim->scheduler_stats();
    total.scheduled += s.scheduled;
    total.cancelled += s.cancelled;
    total.heap_backed_actions += s.heap_backed_actions;
  }
  return total;
}

sim::SimTime Engine::now() const {
  sim::SimTime latest = sim::SimTime::zero();
  for (const Shard& shard : shards_) {
    latest = std::max(latest, shard.sim->now());
  }
  return latest;
}

}  // namespace fxtraf::pdes
