// Conservative parallel discrete-event engine: one Simulator per shard,
// lock-step safe windows bounded by the shard plan's lookahead.
//
// Window protocol (two barriers per window, coordinator = calling
// thread, T worker threads executing shards):
//
//   coordinator (workers parked):
//     1. drain every shard's outbox of cross-shard messages into the
//        destination shards' injection lists, sorted by (timestamp,
//        source shard) — a total order independent of worker count;
//     2. flush the per-shard delivery-record sinks, merged by
//        (timestamp, shard), into the single-threaded record consumer;
//     3. fg := sum of foreground events + staged injections.  fg == 0
//        terminates (background-only heartbeats never keep a trial
//        alive, matching the serial run() contract);
//     4. m := earliest event or injection anywhere.  m past the
//        watchdog budget stops the run with watchdog_fired;
//     5. window deadline := m + lookahead - 1ns.
//   barrier; workers pull shards off an atomic index, schedule that
//   shard's injections, and run_until(deadline); barrier.
//
// Safety: every cross-shard message is stamped at least `lookahead`
// after the instant it was posted, and posts only happen while
// executing events at time >= m, so no message can land inside the
// window that produced it — each shard's window is causally closed.
//
// Determinism: shard boundaries, per-shard seeds, injection order, and
// record merge order are all pure functions of (plan, trial seed); the
// worker count only changes which OS thread executes a shard's
// (internally sequential) window.  Hence digest(sim_threads=1) ==
// digest(sim_threads=N), bitwise — the property test_pdes.cpp locks in.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ethernet/link.hpp"
#include "pdes/shard_plan.hpp"
#include "simcore/remote_hop.hpp"
#include "simcore/simulator.hpp"
#include "trace/record.hpp"

namespace fxtraf::pdes {

class SpinBarrier;

class Engine {
 public:
  /// Single-threaded sink for the merged delivery records (the trial
  /// points it at Capture::observe).
  using RecordConsumer =
      std::function<void(sim::SimTime, const trace::PacketRecord&)>;

  /// `workers` is clamped to [1, plan.shards]; a plan with fewer shards
  /// than requested threads cannot use the extras.
  Engine(ShardPlan plan, std::uint64_t seed, int workers);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const ShardPlan& shard_plan() const { return plan_; }
  [[nodiscard]] int workers() const { return workers_; }

  [[nodiscard]] sim::Simulator& shard_sim(int shard) {
    return *shards_[static_cast<std::size_t>(shard)].sim;
  }
  [[nodiscard]] sim::Simulator& fabric_sim() {
    return shard_sim(plan_.fabric_shard);
  }
  [[nodiscard]] sim::Simulator& host_sim(int host) {
    return shard_sim(plan_.shard_of(host));
  }

  /// The RemoteHop carrying events from `src_shard` to `dst_shard`
  /// (installed on the matching direction of each cut access link).
  [[nodiscard]] sim::RemoteHop& hop(int src_shard, int dst_shard);

  /// Zero-delay control call into `dst_shard` (the VM's remote_post):
  /// stamped `lookahead` after the posting shard's current instant, so
  /// it still precedes any data that needs a full wire traversal.
  void post_control(int dst_shard, sim::UniqueAction action);

  /// End-to-end delivery tap: records into the executing shard's sink
  /// (single-writer); the coordinator merges sinks between windows.
  [[nodiscard]] eth::Tap delivery_tap();
  void set_record_consumer(RecordConsumer consumer) {
    consumer_ = std::move(consumer);
  }

  /// Runs windows until global quiescence, or until the earliest
  /// remaining work passes `watchdog` (zero = no budget).  Returns true
  /// if the watchdog stopped the run.  Call at most once per Engine.
  bool run(sim::Duration watchdog);

  /// Aggregates over every shard (read between windows / post-run).
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] sim::EventQueueStats scheduler_stats() const;
  /// Furthest shard clock — the trial's notion of "now" post-run.
  [[nodiscard]] sim::SimTime now() const;
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

 private:
  class Hop;

  /// One cross-shard message; `src` breaks timestamp ties (total order).
  struct RemoteMsg {
    sim::SimTime ts;
    int src = 0;
    sim::UniqueAction action;
  };

  struct Shard {
    std::unique_ptr<sim::Simulator> sim;
    /// Outgoing messages per destination shard, appended only by the
    /// worker executing this shard, drained only between barriers.
    std::vector<std::vector<RemoteMsg>> outbox;
    /// Messages staged by the coordinator for the next window.
    std::vector<RemoteMsg> inject;
    /// Delivery records observed on this shard, time-ordered.
    std::vector<trace::PacketRecord> records;
  };

  void post_from(int src_shard, int dst_shard, sim::SimTime at,
                 sim::UniqueAction action);
  void stage_injections();
  void flush_records();
  void worker_loop();

  ShardPlan plan_;
  int workers_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Hop>> hops_;
  RecordConsumer consumer_;
  std::unique_ptr<SpinBarrier> barrier_;
  std::atomic<int> next_shard_{0};
  std::atomic<bool> stop_{false};
  sim::SimTime deadline_ = sim::SimTime::zero();
  std::uint64_t windows_ = 0;
  bool ran_ = false;
};

}  // namespace fxtraf::pdes
