#include "pdes/shard_plan.hpp"

#include <algorithm>

#include "ethernet/frame.hpp"

namespace fxtraf::pdes {

ShardPlan plan_shards(const eth::TopologySpec& spec, int hosts) {
  ShardPlan plan;
  plan.host_shard.assign(static_cast<std::size_t>(std::max(hosts, 0)), 0);
  if (spec.kind == eth::TopologySpec::Kind::kSharedBus || hosts < 2) {
    // One collision domain (or a trivial host count) is one sequential
    // process; the fallback lookahead only sets the barrier cadence.
    return plan;
  }

  // Host groups sized so small trials don't drown in barrier overhead
  // and huge ones don't serialize on too-few shards.  The group count —
  // like everything else here — depends only on the topology, never on
  // the worker count, so shard-local RNG streams and injection order
  // are identical for any sim_threads.
  const int groups = std::clamp(hosts / 4, 1, 64);
  plan.shards = groups + 1;  // fabric + host blocks
  plan.sharded = true;
  const int block = (hosts + groups - 1) / groups;
  for (int h = 0; h < hosts; ++h) {
    plan.host_shard[static_cast<std::size_t>(h)] = 1 + h / block;
  }

  // Cut edges are exactly the host access links: a frame crossing one
  // needs at least a minimum-size transmission (preamble included —
  // deliveries are posted at transmission begin for end + propagation)
  // plus the propagation delay.
  plan.lookahead =
      eth::byte_time_at(eth::kMinWireBytes + eth::kPreambleBytes,
                        spec.link_rate_bps) +
      spec.propagation;
  return plan;
}

}  // namespace fxtraf::pdes
