// Learning-bridge and switched-topology tests: MAC learning/aging,
// flood-then-learn, store-and-forward latency arithmetic, bounded
// per-port FIFO tail-drop, multi-hop conservation under faults, and the
// campaign replay contract on a switched layout.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/trial.hpp"
#include "campaign/engine.hpp"
#include "campaign/seed.hpp"
#include "ethernet/bridge.hpp"
#include "ethernet/duplex_link.hpp"
#include "ethernet/topology.hpp"
#include "simcore/simulator.hpp"
#include "trace/digest.hpp"

namespace fxtraf {
namespace {

eth::Frame make_frame(net::HostId src, net::HostId dst, std::size_t payload) {
  net::IpDatagram d;
  d.src = src;
  d.dst = dst;
  d.proto = net::IpProto::kTcp;
  d.payload_bytes = payload;
  eth::Frame f;
  f.src = src;
  f.dst = dst;
  f.datagram = std::make_shared<const net::IpDatagram>(d);
  return f;
}

/// Two hosts on a single-bridge star at 100 Mb/s.
struct Star {
  sim::Simulator sim{4242};
  eth::TopologySpec spec = [] {
    eth::TopologySpec s;
    s.kind = eth::TopologySpec::Kind::kStar;
    s.link_rate_bps = 100e6;
    return s;
  }();
  eth::Topology topo{sim, spec, 2};
  eth::Nic h0{sim, topo.host_link(0), 0};
  eth::Nic h1{sim, topo.host_link(1), 1};
  eth::Bridge& bridge = *topo.bridges().front();
};

TEST(BridgeTest, FloodsUnknownThenLearnsAndForwards) {
  Star star;
  int at1 = 0;
  star.h1.set_receive_handler([&](const eth::Frame&) { ++at1; });
  star.h0.send(make_frame(0, 1, 200));
  star.sim.run();
  EXPECT_EQ(at1, 1);
  // Destination 1 was unknown: the frame flooded.  Source 0 was learned
  // from the same frame.
  EXPECT_EQ(star.bridge.stats().floods, 1u);
  EXPECT_EQ(star.bridge.stats().flood_copies, 1u);
  EXPECT_EQ(star.bridge.stats().frames_forwarded, 0u);
  ASSERT_TRUE(star.bridge.lookup(0).has_value());
  EXPECT_EQ(*star.bridge.lookup(0), 0);
  EXPECT_FALSE(star.bridge.lookup(1).has_value());

  // The reply goes to a learned address: forwarded, not flooded.
  star.h1.send(make_frame(1, 0, 200));
  star.sim.run();
  EXPECT_EQ(star.bridge.stats().floods, 1u);
  EXPECT_EQ(star.bridge.stats().frames_forwarded, 1u);
  ASSERT_TRUE(star.bridge.lookup(1).has_value());
  EXPECT_EQ(*star.bridge.lookup(1), 1);
}

TEST(BridgeTest, MacEntriesAgeOutAndRefloodOnStaleLookup) {
  sim::Simulator sim{4242};
  eth::TopologySpec spec;
  spec.kind = eth::TopologySpec::Kind::kStar;
  spec.link_rate_bps = 100e6;
  spec.mac_age = sim::millis(1);
  eth::Topology topo{sim, spec, 2};
  eth::Nic h0{sim, topo.host_link(0), 0};
  eth::Nic h1{sim, topo.host_link(1), 1};
  eth::Bridge& bridge = *topo.bridges().front();

  h0.send(make_frame(0, 1, 200));
  sim.run();
  h1.send(make_frame(1, 0, 200));  // learns 1, forwards to learned 0
  sim.run();
  EXPECT_EQ(bridge.stats().floods, 1u);
  EXPECT_EQ(bridge.stats().frames_forwarded, 1u);

  // Well past mac_age both entries are stale: the next send floods
  // again, and re-learning the source counts as an aged replacement.
  sim.schedule_in(sim::millis(10), [&] { h0.send(make_frame(0, 1, 200)); });
  sim.run();
  EXPECT_EQ(bridge.stats().floods, 2u);
  EXPECT_GE(bridge.stats().macs_aged, 1u);
  EXPECT_FALSE(bridge.lookup(1).has_value());  // stale entry stays dead
}

TEST(BridgeTest, StoreAndForwardLatencyIsExact) {
  // Idle single-switch star, known path, links idle well past the IFG:
  // the end-to-end delivery time is
  //   tx + prop         (host serializes onto its access link)
  //   + forward_latency (store-and-forward lookup/copy)
  //   + tx + prop       (egress port serializes, no queueing)
  // with both serializations at the 100 Mb/s access rate.
  Star star;
  // Teach the bridge both addresses so the measured frame is forwarded.
  star.h0.send(make_frame(0, 1, 100));
  star.sim.run();
  star.h1.send(make_frame(1, 0, 100));
  star.sim.run();

  std::vector<sim::SimTime> deliveries;
  star.topo.add_delivery_tap(
      [&](sim::SimTime t, const eth::Frame&) { deliveries.push_back(t); });
  const sim::SimTime start = star.sim.now();
  star.h0.send(make_frame(0, 1, 1000));
  star.sim.run();

  ASSERT_EQ(deliveries.size(), 1u);
  const eth::Frame probe = make_frame(0, 1, 1000);
  const sim::Duration tx = probe.transmission_time_at(100e6);
  const sim::Duration expected = tx + star.spec.propagation +
                                 star.spec.forward_latency + tx +
                                 star.spec.propagation;
  EXPECT_EQ((deliveries.front() - start).ns(), expected.ns());

  // The bridge's own transit accounting covers ingress-arrival to
  // egress-wire-out: everything except the final propagation hop and the
  // initial serialization.
  const eth::BridgePortStats& out = star.bridge.port_stats(1);
  EXPECT_EQ(out.transit_frames, 2u);  // learned reply + measured frame
  EXPECT_EQ(out.transit_ns_max,
            static_cast<std::uint64_t>(
                (star.spec.forward_latency + tx).ns()));
}

TEST(BridgeTest, PortFifoOverflowTailDropsWithAttribution) {
  // Rate mismatch: gigabit ingress, 10 Mb/s egress, 4-frame port FIFO.
  // The egress port must shed load by tail-drop, with every loss
  // attributed, and its NIC conservation must still close.
  sim::Simulator sim{99};
  eth::DuplexLink fast{sim, eth::DuplexLinkConfig{1000e6, sim::micros(0.5)}};
  eth::DuplexLink slow{sim, eth::DuplexLinkConfig{10e6, sim::micros(0.5)}};
  eth::BridgeConfig cfg;
  cfg.port_queue_frames = 4;
  eth::Bridge bridge{sim, cfg};
  bridge.add_port(fast);
  bridge.add_port(slow);
  eth::Nic h0{sim, fast, 0};
  eth::Nic h1{sim, slow, 1};
  int received = 0;
  h1.set_receive_handler([&](const eth::Frame&) { ++received; });

  constexpr int kOffered = 50;
  for (int i = 0; i < kOffered; ++i) h0.send(make_frame(0, 1, 1000));
  sim.run();

  const eth::NicStats& out = bridge.port_nic(1).stats();
  EXPECT_GT(out.queue_tail_drops, 0u);
  EXPECT_EQ(out.frames_enqueued, static_cast<std::uint64_t>(kOffered));
  EXPECT_EQ(out.frames_sent + out.queue_tail_drops,
            static_cast<std::uint64_t>(kOffered));
  EXPECT_EQ(static_cast<std::uint64_t>(received), out.frames_sent);
  // The FIFO bound held: depth never exceeded the configured limit.
  EXPECT_LE(out.queue_high_water, 4u);
  // And the drop bytes line up with the drop count (1058-byte frames).
  EXPECT_EQ(out.queue_tail_drop_bytes,
            out.queue_tail_drops * make_frame(0, 1, 1000).recorded_bytes());
}

TEST(TopologyTest, SpecParsingAndDescription) {
  EXPECT_EQ(eth::parse_topology_kind("shared"),
            eth::TopologySpec::Kind::kSharedBus);
  EXPECT_EQ(eth::parse_topology_kind("star"), eth::TopologySpec::Kind::kStar);
  EXPECT_EQ(eth::parse_topology_kind("tree"), eth::TopologySpec::Kind::kTree);
  EXPECT_FALSE(eth::parse_topology_kind("ring").has_value());
  eth::TopologySpec spec;
  EXPECT_EQ(eth::describe(spec), "shared-10Mb");
  spec.kind = eth::TopologySpec::Kind::kStar;
  spec.link_rate_bps = 100e6;
  EXPECT_EQ(eth::describe(spec), "star-100Mb");
  spec.kind = eth::TopologySpec::Kind::kTree;
  spec.switches = 2;
  spec.uplink_rate_bps = 1000e6;
  EXPECT_EQ(eth::describe(spec), "tree2-100Mb-up1000Mb");
}

TEST(TopologyTest, TreeAssignsHostsToLeavesInBlocks) {
  sim::Simulator sim{1};
  eth::TopologySpec spec;
  spec.kind = eth::TopologySpec::Kind::kTree;
  spec.switches = 2;
  eth::Topology topo{sim, spec, 8};
  for (int h = 0; h < 4; ++h) EXPECT_EQ(topo.leaf_of(h), 0) << h;
  for (int h = 4; h < 8; ++h) EXPECT_EQ(topo.leaf_of(h), 1) << h;
  // Two leaves connect back to back: 8 access links + 1 uplink.
  EXPECT_EQ(topo.links().size(), 9u);
  EXPECT_EQ(topo.bridges().size(), 2u);
  // Each leaf: 4 access ports + 1 uplink port.
  EXPECT_EQ(topo.bridges()[0]->port_count(), 5u);
  EXPECT_EQ(topo.bridges()[1]->port_count(), 5u);
}

apps::TrialScenario switched_scenario(eth::TopologySpec::Kind kind,
                                      std::uint64_t seed) {
  apps::TrialScenario scenario;
  scenario.kernel = "2dfft";
  scenario.scale = 0.05;
  scenario.processors = 4;
  scenario.seed = seed;
  scenario.testbed.topology.kind = kind;
  scenario.testbed.topology.link_rate_bps = 100e6;
  scenario.testbed.host.deschedule_probability = 0.01;
  return scenario;
}

TEST(SwitchedTrials, StarTrialIsDeterministic) {
  const auto a = apps::run_trial(
      switched_scenario(eth::TopologySpec::Kind::kStar, 31337));
  const auto b = apps::run_trial(
      switched_scenario(eth::TopologySpec::Kind::kStar, 31337));
  EXPECT_GT(a.digest.packet_count, 0u);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  // And the bridge actually carried the traffic.
  EXPECT_GT(a.audit.bridge_frames_forwarded, 0u);
}

TEST(SwitchedTrials, SerialAndParallelCampaignsMatchOnStar) {
  campaign::TrialSpec base;
  base.scenario = switched_scenario(eth::TopologySpec::Kind::kStar, 0);
  base.label = "2dfft-star";
  const auto specs = campaign::seed_sweep(base, 4, 0xace0fba5e);
  campaign::CampaignOptions serial;
  serial.threads = 1;
  serial.characterize = false;
  campaign::CampaignOptions parallel = serial;
  parallel.threads = 4;
  const auto a = campaign::run_campaign(specs, serial);
  const auto b = campaign::run_campaign(specs, parallel);
  ASSERT_EQ(a.failures + b.failures, 0u);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].digest, b.trials[i].digest) << a.trials[i].label;
  }
}

// Conservation property tests: Trial::finish() throws on any audit
// violation, so a clean return IS the multi-hop byte-conservation
// assertion (per NIC, per link with independent taps, per bridge).

TEST(SwitchedConservation, StarUnderBitErrorsStaysConserved) {
  auto scenario = switched_scenario(eth::TopologySpec::Kind::kStar, 7);
  scenario.faults.frame_ber = 5e-6;  // bites on every link independently
  const auto run = apps::run_trial(scenario);
  EXPECT_TRUE(run.audit.ok) << run.audit.summary();
  EXPECT_GT(run.audit.drops_ber, 0u) << "plan never bit: " +
                                            run.audit.summary();
  // Transport recovered the losses end to end.
  EXPECT_GT(run.audit.tcp_retransmissions + run.audit.daemon_retransmissions,
            0u);
}

TEST(SwitchedConservation, TreeUnderHostCrashStaysConserved) {
  auto scenario = switched_scenario(eth::TopologySpec::Kind::kTree, 11);
  scenario.testbed.topology.switches = 2;
  scenario.faults.host_faults.push_back(
      {/*host=*/2, /*start_s=*/0.2, /*duration_s=*/0.4, /*cpu_factor=*/0.0,
       /*network_down=*/true});
  scenario.faults.watchdog_s = 300.0;
  const auto run = apps::run_trial(scenario);
  EXPECT_TRUE(run.audit.ok) << run.audit.summary();
  EXPECT_GT(run.audit.drops_crash, 0u);
}

TEST(SwitchedConservation, TinyPortQueuesShedLoadButStayConserved) {
  auto scenario = switched_scenario(eth::TopologySpec::Kind::kStar, 3);
  scenario.testbed.topology.link_rate_bps = 10e6;
  scenario.testbed.topology.port_queue_frames = 1;
  const auto run = apps::run_trial(scenario);
  EXPECT_TRUE(run.audit.ok) << run.audit.summary();
  // With single-frame egress FIFOs under all-to-all traffic the bridge
  // must shed load — and every shed frame is attributed, or finish()
  // would have thrown.
  EXPECT_GT(run.audit.drops_queue, 0u) << run.audit.summary();
}

}  // namespace
}  // namespace fxtraf
