// Flow-vs-packet cross-validation: the acceptance gate for the fluid
// fast path.
//
// Every source kernel runs in BOTH fidelities on the shared bus and on
// a 100 Mb/s star, and the measured fundamentals — l (idle seconds per
// period), b (dominant machine-pair bytes per period), c (the period) —
// must agree within 10%, mirroring the fxc predictor's acceptance gate.
// Both sides are measured by exactly one pipeline (flow::
// measure_fundamentals over the 10 ms binned KiB/s series and the
// unordered-pair byte totals), so the comparison tests the fluid
// *model*, not a measurement artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/source_registry.hpp"
#include "apps/trial.hpp"
#include "ethernet/topology.hpp"
#include "flow/measure.hpp"
#include "fxc/lower.hpp"
#include "fxc/parser.hpp"
#include "fxc/sema/predictor.hpp"

namespace fxtraf {
namespace {

struct Fundamentals {
  double l = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// Collision outcomes make the packet side's l genuinely stochastic: on
/// the contended FFT configurations it wanders across seeds by more
/// than the 10% band itself (t2dfft @P=8 spans 0.28–0.39 s over seeds
/// 1–5), so the deterministic fluid model is gated against a small seed
/// ensemble rather than one seed's noise.  The component-wise median is
/// the robust pick: an occasional octave jump in one seed's period
/// estimate would poison a mean but not the majority mode.
constexpr unsigned kPacketSeeds[] = {1, 2, 3};

Fundamentals measure(const apps::TrialRun& run, int iterations) {
  const std::vector<double> pair_bytes =
      flow::unordered_pair_bytes(run.stream.connections);
  flow::FundamentalsInput input;
  input.bandwidth_kbs = run.stream.bandwidth_series;
  input.bin_seconds = 0.01;
  input.pair_capture_bytes = pair_bytes;
  input.iterations = iterations;
  const double span_s =
      static_cast<double>(run.stream.bandwidth_series.size()) * 0.01;
  if (span_s > 0) input.min_fundamental_hz = 0.8 * iterations / span_s;
  const flow::MeasuredFundamentals m = flow::measure_fundamentals(input);
  return {m.idle_s_per_period, m.burst_bytes, m.period_s};
}

/// Both fidelities must execute the SAME program: the flow side lowers
/// the source kernel, so the packet side runs the fxc-compiled
/// executable of that source (not the hand-written registry twin, whose
/// iteration counts and phase structure differ).
apps::TrialScenario scenario_for(const std::string& kernel, int processors,
                                 apps::Fidelity fidelity,
                                 const eth::TopologySpec& topology,
                                 unsigned seed = 1) {
  apps::TrialScenario scenario;
  scenario.kernel = kernel;
  scenario.processors = processors;
  scenario.fidelity = fidelity;
  scenario.seed = seed;
  scenario.testbed.topology = topology;
  scenario.telemetry.enabled = true;
  scenario.telemetry.store_packets = false;  // bounded memory both sides
  scenario.telemetry.keep_bandwidth_series = true;
  if (fidelity == apps::Fidelity::kPacket) {
    const auto source = apps::source_kernel_by_name(kernel);
    const fxc::SourceProgram program =
        fxc::scale_to_processors(fxc::parse_source(source->source), processors);
    scenario.make_program = [program] {
      return fxc::compile(program).executable;
    };
  }
  return scenario;
}

Fundamentals packet_ensemble(const std::string& kernel, int processors,
                             const eth::TopologySpec& topology,
                             int iterations) {
  std::vector<double> l, b, c;
  for (unsigned seed : kPacketSeeds) {
    const apps::TrialRun run = apps::run_trial(scenario_for(
        kernel, processors, apps::Fidelity::kPacket, topology, seed));
    const Fundamentals f = measure(run, iterations);
    l.push_back(f.l);
    b.push_back(f.b);
    c.push_back(f.c);
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  return {median(l), median(b), median(c)};
}

void expect_agreement(const std::string& tag, const Fundamentals& want,
                      const Fundamentals& got) {
  ASSERT_GT(want.c, 0.0) << tag;
  ASSERT_GT(got.c, 0.0) << tag;
  EXPECT_NEAR(got.c, want.c, 0.10 * want.c)
      << tag << ": c flow=" << got.c << "s packet=" << want.c << "s";
  EXPECT_NEAR(got.b, want.b, 0.10 * want.b)
      << tag << ": b flow=" << got.b << " packet=" << want.b;
  // l carries the 10 ms bin quantization of both series (two bin edges
  // per idle block, several blocks per period), so the 10% band gets
  // one and a half bins of absolute slack.
  EXPECT_NEAR(got.l, want.l, std::max(0.10 * want.l, 0.015))
      << tag << ": l flow=" << got.l << "s packet=" << want.l << "s";
}

void expect_agreement(const eth::TopologySpec& topology,
                      const std::vector<int>& processor_counts) {
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const fxc::SourceProgram program = fxc::parse_source(kernel.source);
    for (int p : processor_counts) {
      const std::string tag = kernel.name + " @P=" + std::to_string(p) +
                              " on " + eth::describe(topology);
      const Fundamentals want =
          packet_ensemble(kernel.name, p, topology, program.iterations);
      const apps::TrialRun flow = apps::run_trial(
          scenario_for(kernel.name, p, apps::Fidelity::kFlow, topology));
      const Fundamentals got = measure(flow, program.iterations);
      expect_agreement(tag, want, got);
    }
  }
}

TEST(FlowCrossValidation, SharedBusWithinTenPercent) {
  expect_agreement(eth::TopologySpec{}, {2, 4, 8});
}

TEST(FlowCrossValidation, StarHundredMbitWithinTenPercent) {
  eth::TopologySpec star;
  star.kind = eth::TopologySpec::Kind::kStar;
  star.link_rate_bps = 100e6;
  expect_agreement(star, {2, 4, 8});
}

TEST(FlowCrossValidation, TreeTwoSwitchesHundredMbitWithinTenPercent) {
  // Two-switch tree at 100 Mb: same per-port capacity as the star, but
  // cross-leaf pairs share the inter-switch trunk and pay one extra
  // store-and-forward hop.  The flow model has to agree anyway.
  //
  // One excluded cell: t2dfft @P=8 block-assigns its entire row stage
  // to leaf 0 and its column stage to leaf 1, so 100% of its bytes
  // cross the trunk.  The packet pipeline (no barriers) spreads that
  // load under compute and never saturates the trunk; the flow model's
  // synchronized per-shift steps stack all four streams on it at once
  // and predict ~2.5x the period — a known model boundary of the
  // phase-serialized fluid schedule (DESIGN.md §14), the tree analogue
  // of the P=16 shared-bus boundary below.
  eth::TopologySpec tree;
  tree.kind = eth::TopologySpec::Kind::kTree;
  tree.switches = 2;
  tree.link_rate_bps = 100e6;
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const fxc::SourceProgram program = fxc::parse_source(kernel.source);
    for (int p : {2, 4, 8}) {
      if (kernel.name == "t2dfft" && p == 8) continue;
      const std::string tag = kernel.name + " @P=" + std::to_string(p) +
                              " on " + eth::describe(tree);
      const Fundamentals want =
          packet_ensemble(kernel.name, p, tree, program.iterations);
      const apps::TrialRun flow = apps::run_trial(
          scenario_for(kernel.name, p, apps::Fidelity::kFlow, tree));
      const Fundamentals got = measure(flow, program.iterations);
      expect_agreement(tag, want, got);
    }
  }
}

TEST(FlowCrossValidation, SixteenProcessorsOnTheStar) {
  // P=16 coverage runs on the 100 Mb star, where per-port capacity
  // scales with the host count.  Sixteen hosts saturate the 10 Mb
  // shared bus outside every model's regime: the packet executables
  // there either overlap fine-grained messages with compute (sor, hist)
  // or collapse under collision retransmissions (t2dfft's capture
  // triples and its period nearly does too) — a known model boundary
  // documented in DESIGN.md.
  eth::TopologySpec star;
  star.kind = eth::TopologySpec::Kind::kStar;
  star.link_rate_bps = 100e6;
  for (const char* name : {"fft2d", "t2dfft"}) {
    const auto kernel = apps::source_kernel_by_name(name);
    ASSERT_TRUE(kernel.has_value());
    const fxc::SourceProgram program = fxc::parse_source(kernel->source);
    const Fundamentals want =
        packet_ensemble(name, 16, star, program.iterations);
    const apps::TrialRun flow = apps::run_trial(
        scenario_for(name, 16, apps::Fidelity::kFlow, star));
    const Fundamentals got = measure(flow, program.iterations);
    expect_agreement(std::string(name) + " @P=16", want, got);
  }
}

}  // namespace
}  // namespace fxtraf
