// Unit tests for the PVM layer: message assembly, direct and daemon
// routing, tag-matched receive, loopback, daemon keepalives.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "pvm/daemon.hpp"
#include "pvm/message.hpp"
#include "pvm/task.hpp"
#include "pvm/vm.hpp"

namespace fxtraf::pvm {
namespace {

TEST(MessageBuilderTest, CopyLoopCoalescesPacks) {
  MessageBuilder b(AssemblyMode::kCopyLoop);
  b.pack_doubles(100);
  b.pack_ints(10);
  b.pack_bytes(5);
  const Message m = b.finish(7);
  EXPECT_EQ(m.tag, 7);
  ASSERT_EQ(m.fragments.size(), 1u);
  EXPECT_EQ(m.fragments[0], 845u);
  EXPECT_EQ(m.payload_bytes(), 845u);
  EXPECT_EQ(m.wire_bytes(), 845u + kMessageHeaderBytes);
}

TEST(MessageBuilderTest, FragmentListFillsDatabufsAcrossPacks) {
  // PVM appends packs into the current databuf: three small packs share
  // one fragment when they fit under the limit.
  MessageBuilder b(AssemblyMode::kFragmentList, 1000);
  b.pack_bytes(100);
  b.pack_bytes(200);
  b.pack_bytes(300);
  const Message m = b.finish(1);
  EXPECT_EQ(m.fragments, (std::vector<std::size_t>{600}));
}

TEST(MessageBuilderTest, FragmentListSplitsAtLimit) {
  MessageBuilder b(AssemblyMode::kFragmentList, 1000);
  b.pack_bytes(2500);
  const Message m = b.finish(1);
  EXPECT_EQ(m.fragments, (std::vector<std::size_t>{1000, 1000, 500}));
}

TEST(MessageBuilderTest, FragmentListSpillsPackTails) {
  // A pack that leaves a partial databuf is continued by the next pack.
  MessageBuilder b(AssemblyMode::kFragmentList, 1000);
  b.pack_bytes(1500);  // 1000 + 500
  b.pack_bytes(800);   // 500 completes the second databuf, 300 remains
  const Message m = b.finish(1);
  EXPECT_EQ(m.fragments, (std::vector<std::size_t>{1000, 1000, 300}));
}

TEST(MessageBuilderTest, EmptyMessageHasHeaderOnly) {
  MessageBuilder b(AssemblyMode::kCopyLoop);
  const Message m = b.finish(3);
  EXPECT_TRUE(m.fragments.empty());
  EXPECT_EQ(m.wire_bytes(), kMessageHeaderBytes);
}

TEST(MessageBuilderTest, BuilderIsReusableAfterFinish) {
  MessageBuilder b(AssemblyMode::kFragmentList);
  b.pack_bytes(10);
  (void)b.finish(1);
  b.pack_bytes(20);
  const Message m = b.finish(2);
  EXPECT_EQ(m.fragments, std::vector<std::size_t>{20});
}

struct VmFixture {
  sim::Simulator sim{21};
  apps::Testbed testbed;

  explicit VmFixture(PvmConfig pvm_config = {}, int hosts = 4)
      : testbed(sim, make_config(pvm_config, hosts)) {
    testbed.start();
  }

  static apps::TestbedConfig make_config(PvmConfig pvm_config, int hosts) {
    apps::TestbedConfig c;
    c.workstations = hosts;
    c.pvm = pvm_config;
    return c;
  }
};

sim::Co<void> send_one(Task& task, int dst, std::size_t bytes, int tag) {
  MessageBuilder b = task.make_builder();
  b.pack_bytes(bytes);
  co_await task.send(dst, b.finish(tag));
}

sim::Co<void> recv_one(Task& task, int src, int tag, std::size_t& got) {
  const Message m = co_await task.recv(src, tag);
  got = m.payload_bytes();
}

TEST(PvmTaskTest, DirectRouteDelivers) {
  VmFixture f;
  std::size_t got = 0;
  auto s = sim::spawn(send_one(f.testbed.vm().task(0), 1, 10000, 5));
  auto r = sim::spawn(recv_one(f.testbed.vm().task(1), 0, 5, got));
  f.sim.run();
  EXPECT_TRUE(s.done() && r.done());
  EXPECT_EQ(got, 10000u);
}

TEST(PvmTaskTest, TagMatchingSeparatesMessages) {
  VmFixture f;
  Task& t0 = f.testbed.vm().task(0);
  Task& t1 = f.testbed.vm().task(1);
  std::size_t got_a = 0, got_b = 0;
  // Send tag 2 first, then tag 1; receives are posted in opposite order.
  auto sender = sim::spawn([](Task& t) -> sim::Co<void> {
    MessageBuilder b = t.make_builder();
    b.pack_bytes(200);
    co_await t.send(1, b.finish(2));
    b.pack_bytes(100);
    co_await t.send(1, b.finish(1));
  }(t0));
  auto receiver = sim::spawn(
      [](Task& t, std::size_t& a, std::size_t& b2) -> sim::Co<void> {
        const Message first = co_await t.recv(0, 1);
        a = first.payload_bytes();
        const Message second = co_await t.recv(0, 2);
        b2 = second.payload_bytes();
      }(t1, got_a, got_b));
  f.sim.run();
  EXPECT_TRUE(sender.done() && receiver.done());
  EXPECT_EQ(got_a, 100u);
  EXPECT_EQ(got_b, 200u);
}

TEST(PvmTaskTest, LoopbackSkipsTheNetwork) {
  VmFixture f;
  std::size_t got = 0;
  auto s = sim::spawn(send_one(f.testbed.vm().task(2), 2, 4096, 9));
  auto r = sim::spawn(recv_one(f.testbed.vm().task(2), 2, 9, got));
  f.sim.run();
  EXPECT_TRUE(s.done() && r.done());
  EXPECT_EQ(got, 4096u);
  for (const auto& p : f.testbed.capture().packets()) {
    EXPECT_NE(p.src, p.dst);  // nothing from 2 to 2 on the wire
  }
}

TEST(PvmTaskTest, ManyMessagesBothDirections) {
  VmFixture f;
  Task& t0 = f.testbed.vm().task(0);
  Task& t1 = f.testbed.vm().task(1);
  int received0 = 0, received1 = 0;
  auto p0 = sim::spawn([](Task& me, int& count) -> sim::Co<void> {
    for (int i = 0; i < 20; ++i) {
      MessageBuilder b = me.make_builder();
      b.pack_bytes(3000);
      co_await me.send(1, b.finish(i));
      co_await me.recv(1, i);
      ++count;
    }
  }(t0, received0));
  auto p1 = sim::spawn([](Task& me, int& count) -> sim::Co<void> {
    for (int i = 0; i < 20; ++i) {
      co_await me.recv(0, i);
      MessageBuilder b = me.make_builder();
      b.pack_bytes(3000);
      co_await me.send(0, b.finish(i));
      ++count;
    }
  }(t1, received1));
  f.sim.run();
  EXPECT_TRUE(p0.done() && p1.done());
  EXPECT_EQ(received0, 20);
  EXPECT_EQ(received1, 20);
}

TEST(PvmDaemonTest, DaemonRouteDeliversOverUdp) {
  PvmConfig cfg;
  cfg.route = RouteMode::kDaemon;
  VmFixture f(cfg);
  std::size_t got = 0;
  auto s = sim::spawn(send_one(f.testbed.vm().task(0), 3, 50000, 4));
  auto r = sim::spawn(recv_one(f.testbed.vm().task(3), 0, 4, got));
  f.sim.run();
  EXPECT_TRUE(s.done() && r.done());
  EXPECT_EQ(got, 50000u);
  // Everything crossed as UDP; daemon acks flowed back.
  int udp = 0, tcp = 0;
  for (const auto& p : f.testbed.capture().packets()) {
    (p.proto == net::IpProto::kUdp ? udp : tcp)++;
  }
  EXPECT_GT(udp, 30);
  EXPECT_EQ(tcp, 0);
  EXPECT_GE(f.testbed.vm().daemon_of(3).stats().acks_sent, 8u);
}

TEST(PvmDaemonTest, DaemonRouteSurvivesFrameLoss) {
  PvmConfig cfg;
  cfg.route = RouteMode::kDaemon;
  cfg.keepalives_enabled = false;
  VmFixture f(cfg);
  // Destroy every 9th UDP frame in flight: the daemons' reliable-UDP
  // protocol (sequence numbers + ack-timeout retransmission) must
  // recover both lost data fragments and lost acks.
  int udp_frames = 0;
  f.testbed.segment().set_fault_injector([&](const eth::Frame& frame) {
    return frame.datagram->proto == net::IpProto::kUdp &&
           ++udp_frames % 9 == 0;
  });
  std::size_t got01 = 0, got10 = 0;
  auto s0 = sim::spawn(send_one(f.testbed.vm().task(0), 1, 60000, 4));
  auto s1 = sim::spawn(send_one(f.testbed.vm().task(1), 0, 60000, 4));
  auto r0 = sim::spawn(recv_one(f.testbed.vm().task(0), 1, 4, got10));
  auto r1 = sim::spawn(recv_one(f.testbed.vm().task(1), 0, 4, got01));
  f.sim.run();
  EXPECT_TRUE(s0.done() && s1.done() && r0.done() && r1.done());
  EXPECT_EQ(got01, 60000u);
  EXPECT_EQ(got10, 60000u);
  const auto& d0 = f.testbed.vm().daemon_of(0).stats();
  const auto& d1 = f.testbed.vm().daemon_of(1).stats();
  EXPECT_GE(d0.retransmissions + d1.retransmissions, 1u);
}

TEST(PvmDaemonTest, DaemonAllToAllUnderContentionCompletes) {
  PvmConfig cfg;
  cfg.route = RouteMode::kDaemon;
  cfg.keepalives_enabled = false;
  VmFixture f(cfg);
  // All four tasks blast 100 KB to everyone simultaneously: heavy
  // collision-domain contention, occasional MAC drops, full recovery.
  std::vector<sim::Process> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back(sim::spawn([](Task& me, int p) -> sim::Co<void> {
      for (int s = 1; s < p; ++s) {
        const int dst = (me.tid() + s) % p;
        MessageBuilder b = me.make_builder();
        b.pack_bytes(100000);
        co_await me.send(dst, b.finish(1));
      }
      for (int s = 1; s < p; ++s) {
        const int src = (me.tid() - s + p) % p;
        const Message m = co_await me.recv(src, 1);
        EXPECT_EQ(m.payload_bytes(), 100000u);
      }
    }(f.testbed.vm().task(r), 4)));
  }
  f.sim.run();
  for (const auto& p : procs) EXPECT_TRUE(p.done());
}

TEST(PvmDaemonTest, KeepalivesFlowBetweenDaemons) {
  PvmConfig cfg;
  cfg.keepalive_interval = sim::seconds(1);
  VmFixture f(cfg);
  f.sim.run_until(sim::SimTime::zero() + sim::seconds(10));
  int keepalives = 0;
  for (const auto& p : f.testbed.capture().packets()) {
    if (p.proto == net::IpProto::kUdp && p.dst_port == kDaemonControlPort) {
      ++keepalives;
    }
  }
  // 4 daemons x 3 peers x ~9-10 rounds.
  EXPECT_GT(keepalives, 80);
  EXPECT_LT(keepalives, 150);
}

TEST(PvmDaemonTest, KeepalivesCanBeDisabled) {
  PvmConfig cfg;
  cfg.keepalives_enabled = false;
  VmFixture f(cfg);
  f.sim.run_until(sim::SimTime::zero() + sim::seconds(10));
  EXPECT_EQ(f.testbed.capture().size(), 0u);
}

TEST(PvmVmTest, HostTidMappingRoundTrips) {
  VmFixture f;
  auto& vm = f.testbed.vm();
  for (int t = 0; t < vm.ntasks(); ++t) {
    EXPECT_EQ(vm.tid_of(vm.host_of(t)), t);
    EXPECT_EQ(vm.task(t).tid(), t);
  }
  EXPECT_THROW((void)vm.tid_of(250), std::out_of_range);
}

}  // namespace
}  // namespace fxtraf::pvm
