// Telemetry subsystem tests: histogram bucket math and merge algebra,
// the Goertzel bank against the offline spectral pipeline, flight
// recorder ring + pcap round-trip, bounded-memory streaming-vs-buffered
// equivalence across all six kernels, and campaign metric-merge
// determinism (serial == parallel), with and without faults.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <numbers>
#include <sstream>
#include <string>
#include <vector>

#include "apps/fft2d.hpp"
#include "apps/trial.hpp"
#include "campaign/engine.hpp"
#include "core/bandwidth.hpp"
#include "core/packet_stats.hpp"
#include "dsp/peaks.hpp"
#include "dsp/welch.hpp"
#include "ethernet/frame_pool.hpp"
#include "simcore/rng.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/goertzel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/streaming.hpp"
#include "trace/digest.hpp"
#include "trace/pcap.hpp"

namespace fxtraf::telemetry {
namespace {

// ---- Histogram bucket math. -------------------------------------------

TEST(HistogramTest, BucketBoundsInvertIndex) {
  // Exact below 2^kSubBucketBits; bounded relative error above.
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_EQ(Histogram::bucket_lower_bound(i), v);
    EXPECT_EQ(Histogram::bucket_upper_bound(i), v + 1);
  }
  std::uint64_t prev_index = 0;
  const std::uint64_t probes[] = {8,     9,     15,        16,
                                  63,    64,    1000,      65535,
                                  65536, 1ull << 40, UINT64_MAX >> 1};
  for (std::uint64_t v : probes) {
    const std::size_t i = Histogram::bucket_index(v);
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    const std::uint64_t hi = Histogram::bucket_upper_bound(i);
    EXPECT_LE(lo, v) << v;
    EXPECT_LT(v, hi) << v;
    EXPECT_GE(i, prev_index);  // monotone in value
    prev_index = i;
    // Relative bucket width <= 1/kSubBuckets for values past the exact
    // range: width * kSubBuckets <= lower bound.
    EXPECT_LE((hi - lo) * Histogram::kSubBuckets, lo) << v;
  }
}

TEST(HistogramTest, ObserveQuantileAndMoments) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Bucketed quantile resolves to the containing bucket's upper bound:
  // within one bucket width (<= 1/8 relative) of the true quantile.
  const double p50 = static_cast<double>(h.quantile(0.5));
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 500.0 * (1.0 + 1.0 / Histogram::kSubBuckets) + 1);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  sim::Rng rng(7);
  Histogram parts[3];
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 500; ++i) {
      parts[p].observe(rng.next_u64() % (1ull << (4 * (p + 1))));
    }
  }
  Histogram left;  // (a + b) + c
  left.merge(parts[0]);
  left.merge(parts[1]);
  left.merge(parts[2]);
  Histogram right;  // c + (b + a)
  Histogram ba;
  ba.merge(parts[1]);
  ba.merge(parts[0]);
  right.merge(parts[2]);
  right.merge(ba);
  EXPECT_EQ(left.buckets(), right.buckets());
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
}

// ---- Registry merge determinism. --------------------------------------

std::string prometheus_string(const MetricRegistry& registry) {
  std::ostringstream out;
  write_prometheus(out, registry);
  return out.str();
}

MetricRegistry make_registry(std::uint64_t seed) {
  MetricRegistry reg;
  sim::Rng rng(seed);
  reg.counter("events").add(rng.next_u64() % 1000);
  reg.counter(labeled("drops", "cause", "ber")).add(rng.next_u64() % 10);
  reg.gauge("utilization", GaugeMerge::kMax)
      .set(static_cast<double>(rng.next_u64() % 100) / 100.0);
  reg.gauge("first_time", GaugeMerge::kMin)
      .set(static_cast<double>(rng.next_u64() % 50));
  reg.gauge("total_load", GaugeMerge::kSum)
      .set(static_cast<double>(rng.next_u64() % 7));
  for (int i = 0; i < 100; ++i) reg.histogram("sizes").observe(rng.next_u64() % 1500);
  return reg;
}

TEST(RegistryTest, MergeOrderIndependent) {
  MetricRegistry forward;
  for (std::uint64_t s : {1u, 2u, 3u, 4u}) forward.merge(make_registry(s));
  MetricRegistry backward;
  for (std::uint64_t s : {4u, 3u, 2u, 1u}) backward.merge(make_registry(s));
  MetricRegistry nested;  // (1+2) + (3+4)
  MetricRegistry a, b;
  a.merge(make_registry(1));
  a.merge(make_registry(2));
  b.merge(make_registry(3));
  b.merge(make_registry(4));
  nested.merge(a);
  nested.merge(b);
  const std::string want = prometheus_string(forward);
  EXPECT_EQ(want, prometheus_string(backward));
  EXPECT_EQ(want, prometheus_string(nested));
  EXPECT_FALSE(want.empty());
}

TEST(RegistryTest, GaugeMergePolicies) {
  MetricRegistry a, b;
  a.gauge("hw", GaugeMerge::kMax).set(3.0);
  b.gauge("hw", GaugeMerge::kMax).set(7.0);
  a.gauge("lo", GaugeMerge::kMin).set(3.0);
  b.gauge("lo", GaugeMerge::kMin).set(7.0);
  a.gauge("sum", GaugeMerge::kSum).set(3.0);
  b.gauge("sum", GaugeMerge::kSum).set(7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauge("hw", GaugeMerge::kMax).value(), 7.0);
  EXPECT_DOUBLE_EQ(a.gauge("lo", GaugeMerge::kMin).value(), 3.0);
  EXPECT_DOUBLE_EQ(a.gauge("sum", GaugeMerge::kSum).value(), 10.0);
}

// ---- Goertzel bank vs the offline spectral pipeline. ------------------

TEST(GoertzelTest, MatchesWelchOnSyntheticTones) {
  // Fundamental on the segment grid (bin 10 of 256 at dt = 10 ms) plus
  // two harmonics, a DC offset, and deterministic noise.
  const double dt = 0.01;
  const std::size_t segment = 256;
  const double f0 = 10.0 / (static_cast<double>(segment) * dt);
  GoertzelOptions options;
  options.segment_samples = segment;
  options.overlap_samples = segment / 2;
  options.tracked_hz = {f0, 2 * f0, 3 * f0};
  GoertzelBank bank(dt, options);

  sim::Rng rng(11);
  std::vector<double> samples(2048);
  for (std::size_t n = 0; n < samples.size(); ++n) {
    const double t = static_cast<double>(n) * dt;
    samples[n] = 50.0 +
                 30.0 * std::sin(2 * std::numbers::pi * f0 * t) +
                 12.0 * std::sin(2 * std::numbers::pi * 2 * f0 * t) +
                 5.0 * std::sin(2 * std::numbers::pi * 3 * f0 * t) +
                 0.5 * (rng.next_double() - 0.5);
    bank.push(samples[n]);
  }
  ASSERT_GT(bank.segments(), 0u);

  dsp::WelchOptions welch_options;
  welch_options.segment_samples = segment;
  welch_options.overlap_samples = segment / 2;
  const dsp::Spectrum welch = dsp::welch(samples, dt, welch_options);
  const auto& grid = bank.grid_power();
  ASSERT_EQ(grid.size(), welch.power.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_NEAR(grid[k], welch.power[k],
                1e-9 * std::max(1.0, welch.power[k]))
        << "grid bin " << k;
  }

  // The recurrence at an exactly-on-grid tracked frequency reproduces
  // the DFT bin.
  const auto& tracked = bank.tracked_power();
  EXPECT_NEAR(tracked[0], grid[10], 1e-6 * grid[10]);

  // Online fundamental within 1% of both the offline estimate and truth.
  const dsp::FundamentalEstimate online = bank.fundamental();
  const dsp::FundamentalEstimate offline = dsp::estimate_fundamental(
      dsp::find_peaks(welch), 2.0 * welch.resolution_hz());
  EXPECT_NEAR(online.frequency_hz, offline.frequency_hz, 0.01 * f0);
  EXPECT_NEAR(online.frequency_hz, f0, 0.01 * f0);
  EXPECT_GT(online.harmonic_power_fraction, 0.9);
}

TEST(GoertzelTest, TracksOffGridFrequencies) {
  // An off-grid tone: no DFT bin lands on it, but the tracked recurrence
  // measures it directly and beats both neighbouring grid bins.
  const double dt = 0.01;
  const double tone = 4.03;  // between grid bins at 256-sample segments
  GoertzelOptions options;
  options.segment_samples = 256;
  options.overlap_samples = 128;
  options.tracked_hz = {tone, tone * 1.37};
  GoertzelBank bank(dt, options);
  for (std::size_t n = 0; n < 1024; ++n) {
    const double t = static_cast<double>(n) * dt;
    bank.push(10.0 * std::sin(2 * std::numbers::pi * tone * t));
  }
  ASSERT_GT(bank.segments(), 0u);
  EXPECT_GT(bank.tracked_power()[0], 100.0 * bank.tracked_power()[1]);
}

TEST(GoertzelTest, RejectsBadOptions) {
  EXPECT_THROW(GoertzelBank(0.0, {}), std::invalid_argument);
  GoertzelOptions bad;
  bad.segment_samples = 64;
  bad.overlap_samples = 64;
  EXPECT_THROW(GoertzelBank(0.01, bad), std::invalid_argument);
}

// ---- Flight recorder. -------------------------------------------------

trace::PacketRecord make_record(int i) {
  trace::PacketRecord r;
  // Microsecond-aligned so the pcap round-trip (us resolution) is exact.
  r.timestamp = sim::SimTime{(1000 + 17 * static_cast<std::int64_t>(i)) * 1000};
  r.bytes = 64 + static_cast<std::uint32_t>(i % 1400);
  r.proto = (i % 3 == 0) ? net::IpProto::kUdp : net::IpProto::kTcp;
  r.src = static_cast<net::HostId>(i % 4);
  r.dst = static_cast<net::HostId>((i + 1) % 4);
  r.src_port = static_cast<std::uint16_t>(5000 + i % 7);
  r.dst_port = static_cast<std::uint16_t>(6000 + i % 5);
  return r;
}

TEST(FlightRecorderTest, RingKeepsLastNInOrder) {
  FlightRecorder recorder(FlightRecorderOptions{8, 4});
  for (int i = 0; i < 21; ++i) recorder.on_packet(make_record(i));
  for (int i = 0; i < 11; ++i) {
    recorder.note(sim::SimTime{i * 1000}, "event " + std::to_string(i));
  }
  EXPECT_EQ(recorder.packets_seen(), 21u);
  EXPECT_EQ(recorder.events_seen(), 11u);

  const auto window = recorder.window();
  ASSERT_EQ(window.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(window[static_cast<std::size_t>(i)].timestamp,
              make_record(13 + i).timestamp);
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().what, "event 7");
  EXPECT_EQ(events.back().what, "event 10");
}

TEST(FlightRecorderTest, PartialRingBeforeWrap) {
  FlightRecorder recorder(FlightRecorderOptions{16, 4});
  for (int i = 0; i < 5; ++i) recorder.on_packet(make_record(i));
  const auto window = recorder.window();
  ASSERT_EQ(window.size(), 5u);
  EXPECT_EQ(window.front().timestamp, make_record(0).timestamp);
  EXPECT_EQ(window.back().timestamp, make_record(4).timestamp);
  EXPECT_THROW(FlightRecorder(FlightRecorderOptions{0, 4}),
               std::invalid_argument);
}

TEST(FlightRecorderTest, DumpWritesReadablePcapAndSnapshot) {
  FlightRecorder recorder(FlightRecorderOptions{16, 8});
  for (int i = 0; i < 40; ++i) recorder.on_packet(make_record(i));
  recorder.note(sim::SimTime{99000}, "tcp abort 1->2: retry budget exhausted");

  MetricRegistry metrics;
  metrics.counter("fxtraf_tcp_aborts_total").add(1);

  const std::string prefix = ::testing::TempDir() + "flight-test";
  const std::string pcap_path = recorder.dump(prefix, "unit test", &metrics);
  EXPECT_EQ(pcap_path, prefix + ".pcap");

  // Round-trip: the pcap holds exactly the retained window.
  const auto loaded = trace::read_pcap_file(pcap_path);
  const auto window = recorder.window();
  ASSERT_EQ(loaded.size(), window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, window[i].timestamp);
    EXPECT_EQ(loaded[i].bytes, window[i].bytes);
    EXPECT_EQ(loaded[i].proto, window[i].proto);
    EXPECT_EQ(loaded[i].src, window[i].src);
    EXPECT_EQ(loaded[i].dst, window[i].dst);
    EXPECT_EQ(loaded[i].src_port, window[i].src_port);
    EXPECT_EQ(loaded[i].dst_port, window[i].dst_port);
  }

  std::ifstream txt(prefix + ".txt");
  ASSERT_TRUE(txt.good());
  std::stringstream contents;
  contents << txt.rdbuf();
  EXPECT_NE(contents.str().find("unit test"), std::string::npos);
  EXPECT_NE(contents.str().find("retry budget exhausted"), std::string::npos);
  EXPECT_NE(contents.str().find("fxtraf_tcp_aborts_total"), std::string::npos);

  EXPECT_THROW(recorder.dump("/nonexistent-dir/zz/flight", "x"),
               std::runtime_error);
}

// ---- Streaming vs buffered trials (the bounded-memory contract). ------

apps::TrialScenario telemetry_scenario(const std::string& kernel,
                                       double scale, bool store_packets) {
  apps::TrialScenario scenario;
  scenario.kernel = kernel;
  scenario.scale = scale;
  scenario.seed = 20260805;
  scenario.telemetry.enabled = true;
  scenario.telemetry.store_packets = store_packets;
  // Short segments so even the briefest kernel trace completes a few.
  scenario.telemetry.spectral_segment_bins = 64;
  scenario.telemetry.spectral_overlap_bins = 32;
  return scenario;
}

TEST(StreamingEquivalenceTest, AllSixKernelsDigestAndFundamentals) {
  for (const char* kernel :
       {"sor", "2dfft", "t2dfft", "seq", "hist", "airshed"}) {
    SCOPED_TRACE(kernel);
    const apps::TrialRun buffered =
        apps::run_trial(telemetry_scenario(kernel, 0.05, true));
    const apps::TrialRun bounded =
        apps::run_trial(telemetry_scenario(kernel, 0.05, false));

    // Bounded mode buffers nothing yet observes everything.
    EXPECT_TRUE(bounded.packets.empty());
    EXPECT_FALSE(buffered.packets.empty());
    EXPECT_EQ(bounded.packets_seen, buffered.packets.size());

    // Identical digests: streaming == buffered == offline recompute.
    EXPECT_EQ(bounded.digest, buffered.digest);
    EXPECT_EQ(buffered.digest, trace::digest_of(buffered.packets));

    // Identical streamed statistics (same fold over the same packets).
    EXPECT_EQ(bounded.stream.packets, buffered.stream.packets);
    EXPECT_EQ(bounded.stream.bytes, buffered.stream.bytes);
    EXPECT_EQ(bounded.stream.bandwidth_bins, buffered.stream.bandwidth_bins);
    EXPECT_DOUBLE_EQ(bounded.stream.fundamental_hz,
                     buffered.stream.fundamental_hz);
    EXPECT_DOUBLE_EQ(bounded.stream.packet_size.mean,
                     buffered.stream.packet_size.mean);

    // The online fundamental against the offline Welch estimate over the
    // offline-binned series, same segmenting: within 1%.
    ASSERT_GT(buffered.stream.spectral_segments, 0u);
    const core::BinnedSeries series =
        core::binned_bandwidth(buffered.packets, sim::millis(10));
    dsp::WelchOptions welch_options;
    welch_options.segment_samples = 64;
    welch_options.overlap_samples = 32;
    const dsp::Spectrum welch =
        dsp::welch(series.kb_per_s, series.interval_s, welch_options);
    // Same peak-extraction knobs core::characterize and the streaming
    // bank use — the comparison is about the spectra, not the extractor.
    const dsp::PeakOptions peak_options{.min_relative_power = 1e-3,
                                        .min_separation_bins = 3,
                                        .skip_dc_bins = 2,
                                        .max_peaks = 24};
    const dsp::FundamentalEstimate offline = dsp::estimate_fundamental(
        dsp::find_peaks(welch, peak_options), 2.0 * welch.resolution_hz());
    if (offline.frequency_hz > 0) {
      EXPECT_NEAR(buffered.stream.fundamental_hz, offline.frequency_hz,
                  0.01 * offline.frequency_hz);
    } else {
      EXPECT_DOUBLE_EQ(buffered.stream.fundamental_hz, 0.0);
    }
  }
}

TEST(StreamingEquivalenceTest, BandwidthSeriesMatchesOfflineBinning) {
  apps::TrialScenario scenario = telemetry_scenario("2dfft", 0.05, true);
  scenario.telemetry.keep_bandwidth_series = true;
  const apps::TrialRun run = apps::run_trial(scenario);
  const core::BinnedSeries offline =
      core::binned_bandwidth(run.packets, sim::millis(10));
  ASSERT_EQ(run.stream.bandwidth_series.size(), offline.kb_per_s.size());
  for (std::size_t i = 0; i < offline.kb_per_s.size(); ++i) {
    EXPECT_NEAR(run.stream.bandwidth_series[i], offline.kb_per_s[i],
                1e-9 * std::max(1.0, offline.kb_per_s[i]))
        << "bin " << i;
  }
  EXPECT_NEAR(run.stream.avg_bandwidth_kbs,
              core::average_bandwidth_kbs(run.packets), 1e-9);
}

TEST(StreamingEquivalenceTest, SpectralBankBitIdenticalAcrossFramePool) {
  // Frames carry their datagrams in pooled blocks recycled across runs.
  // The first trial here allocates fresh blocks; the second reuses the
  // first's recycled memory at different addresses.  The pool must be
  // invisible to telemetry: every streamed number — digest, bandwidth
  // bins, and the spectral bank's Welch grid — must come back
  // bit-identical, not merely close.
  apps::TrialScenario scenario = telemetry_scenario("2dfft", 0.05, true);
  scenario.telemetry.keep_bandwidth_series = true;
  const apps::TrialRun cold = apps::run_trial(scenario);
  const std::uint64_t reused_before = eth::frame_pool_stats().reused;
  const apps::TrialRun warm = apps::run_trial(scenario);
  // The premise: the warm run really did run on recycled blocks.
  EXPECT_GT(eth::frame_pool_stats().reused, reused_before);

  EXPECT_EQ(cold.digest, warm.digest);
  ASSERT_EQ(cold.stream.bandwidth_series.size(),
            warm.stream.bandwidth_series.size());
  for (std::size_t i = 0; i < cold.stream.bandwidth_series.size(); ++i) {
    EXPECT_EQ(cold.stream.bandwidth_series[i],
              warm.stream.bandwidth_series[i])
        << "bin " << i;  // bitwise: EXPECT_EQ, no tolerance
  }
  EXPECT_EQ(cold.stream.fundamental_hz, warm.stream.fundamental_hz);
  EXPECT_EQ(cold.stream.harmonic_power_fraction,
            warm.stream.harmonic_power_fraction);

  // Welch-grid micro-assert: rebuild the streaming bank over each run's
  // series — bit-identical grids — and cross-check the grid against the
  // offline Welch spectrum over the same series.
  const double dt = sim::millis(10).seconds();
  GoertzelOptions options;
  options.segment_samples = 64;
  options.overlap_samples = 32;
  GoertzelBank cold_bank(dt, options), warm_bank(dt, options);
  for (double v : cold.stream.bandwidth_series) cold_bank.push(v);
  for (double v : warm.stream.bandwidth_series) warm_bank.push(v);
  ASSERT_GT(cold_bank.segments(), 0u);
  const auto& cold_grid = cold_bank.grid_power();
  const auto& warm_grid = warm_bank.grid_power();
  ASSERT_EQ(cold_grid.size(), warm_grid.size());
  for (std::size_t k = 0; k < cold_grid.size(); ++k) {
    EXPECT_EQ(cold_grid[k], warm_grid[k]) << "grid bin " << k;
  }
  dsp::WelchOptions welch_options;
  welch_options.segment_samples = 64;
  welch_options.overlap_samples = 32;
  const dsp::Spectrum welch =
      dsp::welch(cold.stream.bandwidth_series, dt, welch_options);
  ASSERT_EQ(cold_grid.size(), welch.power.size());
  for (std::size_t k = 0; k < cold_grid.size(); ++k) {
    EXPECT_NEAR(cold_grid[k], welch.power[k],
                1e-9 * std::max(1.0, welch.power[k]))
        << "grid bin " << k;
  }
}

TEST(StreamingEquivalenceTest, HundredIterationBoundedTrial) {
  // The acceptance run: a 100-iteration kernel (2DFFT's paper default)
  // in bounded-memory mode matches the buffered run bit-for-bit.
  auto scenario = [](bool store) {
    apps::TrialScenario s;
    s.kernel = "2dfft";
    s.seed = 99;
    s.make_program = [] {
      apps::Fft2dParams params;
      params.n = 128;
      params.iterations = 100;
      params.flops_per_phase = 1e5;
      return apps::make_fft2d(params);
    };
    s.telemetry.enabled = true;
    s.telemetry.store_packets = store;
    s.telemetry.spectral_segment_bins = 256;
    s.telemetry.spectral_overlap_bins = 128;
    return s;
  };
  const apps::TrialRun buffered = apps::run_trial(scenario(true));
  const apps::TrialRun bounded = apps::run_trial(scenario(false));
  EXPECT_TRUE(bounded.packets.empty());
  EXPECT_EQ(bounded.digest, buffered.digest);
  EXPECT_EQ(buffered.digest, trace::digest_of(buffered.packets));
  ASSERT_GT(bounded.stream.spectral_segments, 0u);
  EXPECT_DOUBLE_EQ(bounded.stream.fundamental_hz,
                   buffered.stream.fundamental_hz);
  EXPECT_GT(bounded.stream.fundamental_hz, 0.0);
}

TEST(CaptureBoundTest, MaxPacketsTruncatesLoudlyButKeepsDigest) {
  apps::TrialScenario full = telemetry_scenario("2dfft", 0.05, true);
  apps::TrialScenario capped = full;
  capped.telemetry.capture_max_packets = 100;
  const apps::TrialRun full_run = apps::run_trial(full);
  const apps::TrialRun capped_run = apps::run_trial(capped);

  EXPECT_FALSE(full_run.capture_truncated);
  EXPECT_TRUE(capped_run.capture_truncated);
  EXPECT_EQ(capped_run.packets.size(), 100u);
  EXPECT_GT(capped_run.packets_seen, 100u);
  // Observers saw the whole trace: the digest ignores the cap.
  EXPECT_EQ(capped_run.digest, full_run.digest);
  ASSERT_NE(capped_run.metrics, nullptr);
  EXPECT_EQ(capped_run.metrics->counter_value("fxtraf_capture_packets_stored_total"),
            100u);

  // Without telemetry the cap still keeps the full-trace digest (the
  // trial attaches a digest observer).
  apps::TrialScenario plain_capped;
  plain_capped.kernel = "2dfft";
  plain_capped.scale = 0.05;
  plain_capped.seed = full.seed;
  plain_capped.telemetry.capture_max_packets = 100;
  const apps::TrialRun plain_run = apps::run_trial(plain_capped);
  EXPECT_TRUE(plain_run.capture_truncated);
  EXPECT_EQ(plain_run.packets.size(), 100u);
  EXPECT_EQ(plain_run.digest, full_run.digest);
}

// ---- Campaign-level determinism. --------------------------------------

std::vector<campaign::TrialSpec> bounded_specs(std::size_t n,
                                               bool with_faults) {
  campaign::TrialSpec base;
  base.scenario = telemetry_scenario("2dfft", 0.05, false);
  if (with_faults) {
    base.scenario.faults.frame_ber = 1e-5;
    base.scenario.faults.daemon_outages.push_back({1, 0.2, 0.3});
  }
  base.label = "2dfft";
  return campaign::seed_sweep(base, n, 77);
}

TEST(CampaignTelemetryTest, SerialEqualsParallel) {
  const auto specs = bounded_specs(4, false);
  campaign::CampaignOptions serial;
  serial.threads = 1;
  campaign::CampaignOptions parallel;
  parallel.threads = 4;
  const campaign::CampaignResult a = campaign::run_campaign(specs, serial);
  const campaign::CampaignResult b = campaign::run_campaign(specs, parallel);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_TRUE(a.trials[i].ok) << a.trials[i].error;
    EXPECT_EQ(a.trials[i].digest, b.trials[i].digest);
    EXPECT_EQ(a.trials[i].metrics, b.trials[i].metrics);
  }
  // The merged registries export byte-identically.
  EXPECT_FALSE(a.telemetry.empty());
  EXPECT_EQ(prometheus_string(a.telemetry), prometheus_string(b.telemetry));
  // Streamed characterization made it into the campaign metrics even
  // though no packets were buffered.
  EXPECT_GT(a.metric("fundamental_hz").stats.count, 0u);
  EXPECT_GT(a.metric("packets").stats.mean, 0.0);
}

TEST(CampaignTelemetryTest, FaultedCampaignStaysDeterministic) {
  const auto specs = bounded_specs(3, true);
  campaign::CampaignOptions serial;
  serial.threads = 1;
  campaign::CampaignOptions parallel;
  parallel.threads = 3;
  const campaign::CampaignResult a = campaign::run_campaign(specs, serial);
  const campaign::CampaignResult b = campaign::run_campaign(specs, parallel);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].ok, b.trials[i].ok);
    EXPECT_EQ(a.trials[i].digest, b.trials[i].digest);
    EXPECT_EQ(a.trials[i].metrics, b.trials[i].metrics);
  }
  EXPECT_EQ(prometheus_string(a.telemetry), prometheus_string(b.telemetry));
  // The faulted campaign actually exercised the recovery counters.
  EXPECT_GT(a.telemetry.counter_value("fxtraf_tcp_retransmissions_total") +
                a.telemetry.counter_value(
                    "fxtraf_pvm_daemon_retransmissions_total"),
            0u);
}

TEST(CampaignTelemetryTest, ExportersAreByteStableAndWellFormed) {
  const auto specs = bounded_specs(2, false);
  campaign::CampaignOptions options;
  options.threads = 2;
  const campaign::CampaignResult result =
      campaign::run_campaign(specs, options);
  const std::string prom = prometheus_string(result.telemetry);
  EXPECT_NE(prom.find("fxtraf_stream_packets_total"), std::string::npos);
  EXPECT_NE(prom.find("fxtraf_fx_comm_us_bucket"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  std::ostringstream json;
  write_json(json, result.telemetry);
  EXPECT_EQ(json.str().front(), '{');
  EXPECT_NE(json.str().find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.str().find("fxtraf_sim_events_total"), std::string::npos);
}

}  // namespace
}  // namespace fxtraf::telemetry
