// Loss-recovery tests for the simulated TCP, driven through a lossy
// segment with programmable drop predicates: single data loss, ACK
// loss, burst loss, dup-ACK fast retransmit, and the retry-bound abort
// path.  Every recovery test asserts delivered-byte-stream integrity —
// the receiver's application sees exactly the bytes written, once.
#include <gtest/gtest.h>

#include "ethernet/nic.hpp"
#include "ethernet/segment.hpp"
#include "net/stack.hpp"
#include "net/tcp.hpp"
#include "simcore/coro.hpp"

namespace fxtraf::net {
namespace {

struct TwoHosts {
  sim::Simulator sim{7};
  eth::Segment segment{sim};
  eth::Nic nic_a{sim, segment, 0};
  eth::Nic nic_b{sim, segment, 1};
  Stack stack_a{sim, nic_a};
  Stack stack_b{sim, nic_b};
};

/// One-directional bulk transfer with app-level byte accounting.
struct LossyTransfer {
  TwoHosts net;
  TcpConnection* client = nullptr;
  TcpConnection* server = nullptr;
  std::size_t received_by_app = 0;
  std::vector<sim::Process> procs;

  explicit LossyTransfer(std::size_t bytes, std::size_t chunk = 0) {
    if (chunk == 0) chunk = bytes;
    auto& accept_queue = net.stack_b.tcp_listen(5000);
    client = &net.stack_a.tcp_connect(1, 5000);
    procs.push_back(sim::spawn(
        [](TcpConnection& c, std::size_t total, std::size_t n) -> sim::Co<void> {
          co_await c.connect();
          for (std::size_t sent = 0; sent < total; sent += n) {
            c.send(std::min(n, total - sent));
          }
          co_await c.wait_drained();
        }(*client, bytes, chunk)));
    procs.push_back(sim::spawn(
        [](Stack::AcceptQueue& q, LossyTransfer& t, std::size_t total,
           std::size_t n) -> sim::Co<void> {
          t.server = co_await q.pop();
          while (t.received_by_app < total) {
            const std::size_t want = std::min(n, total - t.received_by_app);
            co_await t.server->recv(want);
            t.received_by_app += want;
          }
        }(accept_queue, *this, bytes, chunk)));
  }

  [[nodiscard]] bool all_done() const {
    for (const auto& p : procs) {
      if (!p.done()) return false;
    }
    return true;
  }
};

bool is_data(const eth::Frame& f) {
  return f.datagram->proto == IpProto::kTcp && f.datagram->payload_bytes > 0;
}

bool is_pure_ack(const eth::Frame& f) {
  return f.datagram->proto == IpProto::kTcp &&
         f.datagram->payload_bytes == 0 && !f.datagram->tcp.syn;
}

TEST(TcpLossTest, SingleDataLossDeliversExactByteStream) {
  LossyTransfer t(60000, 4096);
  int data_frames = 0;
  t.net.segment.set_fault_injector([&](const eth::Frame& f) {
    return is_data(f) && ++data_frames == 6;
  });
  t.net.sim.run();
  EXPECT_TRUE(t.all_done());
  EXPECT_EQ(t.received_by_app, 60000u);
  EXPECT_EQ(t.server->stats().bytes_received, 60000u);
  EXPECT_GE(t.client->stats().retransmissions, 1u);
  EXPECT_FALSE(t.client->aborted());
}

TEST(TcpLossTest, FastRetransmitRecoversWithoutTimeout) {
  // Lose one mid-window segment; the segments behind it generate the
  // duplicate-ACK triple well inside the 300 ms RTO floor.
  LossyTransfer t(120000);
  int data_frames = 0;
  t.net.segment.set_fault_injector([&](const eth::Frame& f) {
    return is_data(f) && ++data_frames == 10;
  });
  t.net.sim.run();
  EXPECT_TRUE(t.all_done());
  EXPECT_EQ(t.received_by_app, 120000u);
  EXPECT_GE(t.client->stats().fast_retransmits, 1u);
  EXPECT_EQ(t.client->stats().timeouts, 0u);
}

TEST(TcpLossTest, LostAcksAreAbsorbedByCumulativeAcking) {
  LossyTransfer t(60000, 4096);
  int acks = 0;
  t.net.segment.set_fault_injector([&](const eth::Frame& f) {
    // Drop the server's first three pure ACKs; later cumulative ACKs
    // (or at worst one go-back-N round) must cover the gap.
    return f.src == 1 && is_pure_ack(f) && ++acks <= 3;
  });
  t.net.sim.run();
  EXPECT_TRUE(t.all_done());
  EXPECT_EQ(t.received_by_app, 60000u);
  EXPECT_FALSE(t.client->aborted());
  // ACK loss must never inflate the delivered stream.
  EXPECT_EQ(t.server->stats().bytes_received, 60000u);
}

TEST(TcpLossTest, BurstLossRecoversAndPreservesIntegrity) {
  LossyTransfer t(150000, 8192);
  int data_frames = 0;
  t.net.segment.set_fault_injector([&](const eth::Frame& f) {
    if (!is_data(f)) return false;
    const int n = ++data_frames;
    return n >= 12 && n <= 19;  // eight consecutive data frames die
  });
  t.net.sim.run();
  EXPECT_TRUE(t.all_done());
  EXPECT_EQ(t.received_by_app, 150000u);
  EXPECT_EQ(t.server->stats().bytes_received, 150000u);
  EXPECT_GE(t.client->stats().retransmissions, 8u);
  EXPECT_FALSE(t.client->aborted());
}

TEST(TcpLossTest, PeriodicLossLargeTransferCompletes) {
  LossyTransfer t(400000, 16384);
  int data_frames = 0;
  t.net.segment.set_fault_injector([&](const eth::Frame& f) {
    return is_data(f) && (++data_frames % 23) == 0;
  });
  t.net.sim.run();
  EXPECT_TRUE(t.all_done());
  EXPECT_EQ(t.received_by_app, 400000u);
  EXPECT_GE(t.client->stats().retransmissions, 10u);
  EXPECT_FALSE(t.client->aborted());
}

TEST(TcpLossTest, AdaptiveRtoLearnsRoundTrip) {
  LossyTransfer t(120000);
  t.net.sim.run();
  EXPECT_TRUE(t.all_done());
  // On a clean LAN the estimator must have converged to something real:
  // positive, and far below the 300 ms floor it is clamped against.
  EXPECT_GT(t.client->srtt().ns(), 0);
  EXPECT_LT(t.client->srtt(), sim::millis(300));
  EXPECT_EQ(t.client->stats().timeouts, 0u);
  EXPECT_EQ(t.client->stats().retransmissions, 0u);
}

TEST(TcpLossTest, BlackholedDataAbortsAfterRetryBound) {
  TwoHosts net;
  // Handshake survives; every client data frame dies.  No server-side
  // application coroutine: nothing must be left parked when the client
  // gives up (detached coroutine frames would leak).
  net.segment.set_fault_injector(
      [](const eth::Frame& f) { return f.src == 0 && is_data(f); });
  net.stack_b.tcp_listen(5000);
  TcpConnection& client = net.stack_a.tcp_connect(1, 5000);
  bool threw = false;
  std::string reason;
  auto writer = sim::spawn(
      [](TcpConnection& c, bool& flag, std::string& why) -> sim::Co<void> {
        co_await c.connect();
        c.send(5000);
        try {
          co_await c.wait_drained();
        } catch (const ConnectionAborted& e) {
          flag = true;
          why = e.what();
        }
      }(client, threw, reason));
  net.sim.run();
  EXPECT_TRUE(writer.done());
  EXPECT_TRUE(threw);
  EXPECT_TRUE(client.aborted());
  EXPECT_NE(reason.find("retransmission limit"), std::string::npos);
  // 8 retries with exponential backoff: the abort lands in tens of
  // simulated seconds, not hours (backoff is capped at max_rto).
  EXPECT_LT(net.sim.now().seconds(), 60.0);
  EXPECT_EQ(client.stats().timeouts, 9u);  // max_retries + the fatal one
}

TEST(TcpLossTest, UnreachablePeerFailsConnect) {
  TwoHosts net;
  net.segment.set_fault_injector(
      [](const eth::Frame& f) { return f.datagram->tcp.syn; });
  net.stack_b.tcp_listen(5000);
  TcpConnection& client = net.stack_a.tcp_connect(1, 5000);
  bool threw = false;
  std::string reason;
  auto p = sim::spawn(
      [](TcpConnection& c, bool& flag, std::string& why) -> sim::Co<void> {
        try {
          co_await c.connect();
        } catch (const ConnectionAborted& e) {
          flag = true;
          why = e.what();
        }
      }(client, threw, reason));
  net.sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(threw);
  EXPECT_NE(reason.find("no SYN+ACK"), std::string::npos);
  EXPECT_FALSE(client.established());
}

TEST(TcpLossTest, WriteAfterAbortThrowsInsteadOfHanging) {
  TwoHosts net;
  net.segment.set_fault_injector(
      [](const eth::Frame& f) { return f.src == 0 && is_data(f); });
  net.stack_b.tcp_listen(5000);
  TcpConnection& client = net.stack_a.tcp_connect(1, 5000);
  int aborts_seen = 0;
  auto writer = sim::spawn(
      [](TcpConnection& c, int& count) -> sim::Co<void> {
        co_await c.connect();
        c.send(5000);
        try {
          co_await c.wait_drained();
        } catch (const ConnectionAborted&) {
          ++count;
        }
        try {
          co_await c.write(1000);  // dead connection: must throw, not park
        } catch (const ConnectionAborted&) {
          ++count;
        }
      }(client, aborts_seen));
  net.sim.run();
  EXPECT_TRUE(writer.done());
  EXPECT_EQ(aborts_seen, 2);
}

}  // namespace
}  // namespace fxtraf::net
