// Tests for the Fx compiler front end: ownership arithmetic,
// communication generation per statement kind, pattern classification,
// and end-to-end compile-and-run against the simulated testbed.
#include <gtest/gtest.h>

#include <set>

#include "apps/testbed.hpp"
#include "core/packet_stats.hpp"
#include "fxc/analysis.hpp"
#include "fxc/lower.hpp"
#include "fxc/types.hpp"

namespace fxtraf::fxc {
namespace {

ArrayDecl matrix_decl(std::string name, std::size_t n, ElemType type,
                      int block_dim, int processors,
                      Interval procs = Interval{}) {
  ArrayDecl decl;
  decl.name = std::move(name);
  decl.extents = {n, n};
  decl.type = type;
  decl.distribution.dims = {DistKind::kCollapsed, DistKind::kCollapsed};
  if (block_dim >= 0) {
    decl.distribution.dims[static_cast<std::size_t>(block_dim)] =
        DistKind::kBlock;
  }
  decl.processors = procs.length() > 0
                        ? procs
                        : Interval{0, static_cast<std::size_t>(processors)};
  return decl;
}

TEST(TypesTest, BlockOwnershipCoversExtentExactly) {
  for (std::size_t n : {16u, 17u, 100u, 512u}) {
    for (int p : {1, 2, 3, 4, 7, 8}) {
      std::size_t covered = 0;
      for (int r = 0; r < p; ++r) covered += block_owned(n, r, p).length();
      EXPECT_EQ(covered, n) << "n=" << n << " p=" << p;
      // Contiguity.
      for (int r = 0; r + 1 < p; ++r) {
        EXPECT_EQ(block_owned(n, r, p).hi, block_owned(n, r + 1, p).lo);
      }
    }
  }
}

TEST(TypesTest, OwnedElementsSumToArray) {
  const auto decl = matrix_decl("a", 100, ElemType::kReal8, 0, 4);
  std::size_t total = 0;
  for (int r = 0; r < 4; ++r) total += decl.owned_elements(r);
  EXPECT_EQ(total, 100u * 100u);
  EXPECT_EQ(decl.owned_elements(4), 0u);  // outside the range
}

TEST(TypesTest, ValidationCatchesBadDeclarations) {
  ArrayDecl decl = matrix_decl("a", 8, ElemType::kReal4, 0, 4);
  decl.distribution.dims = {DistKind::kBlock, DistKind::kBlock};
  EXPECT_THROW(decl.validate(), std::invalid_argument);
  decl = matrix_decl("b", 8, ElemType::kReal4, 0, 4);
  decl.processors = Interval{2, 2};
  EXPECT_THROW(decl.validate(), std::invalid_argument);
}

TEST(AnalysisTest, StencilGeneratesNeighborExchange) {
  // SOR: N x N real*4, rows block-distributed, 1-deep halo.
  const auto decl = matrix_decl("u", 512, ElemType::kReal4, 0, 4);
  const int offsets[] = {1, 1};
  const auto m = stencil_communication(decl, offsets, 4);
  EXPECT_EQ(classify(m), CommShape::kNeighbor);
  // One row of 512 real*4 = 2048 bytes to each in-range neighbor.
  EXPECT_EQ(m.at(1, 0), 2048u);
  EXPECT_EQ(m.at(1, 2), 2048u);
  EXPECT_EQ(m.at(0, 1), 2048u);
  EXPECT_EQ(m.at(0, 2), 0u);  // not adjacent
  EXPECT_EQ(m.at(3, 2), 2048u);
  EXPECT_EQ(m.nonzero_pairs(), 6);
}

TEST(AnalysisTest, StencilAlongCollapsedDimIsFree) {
  const auto decl = matrix_decl("u", 512, ElemType::kReal8, 0, 4);
  const int offsets[] = {0, 3};  // only column offsets
  const auto m = stencil_communication(decl, offsets, 4);
  EXPECT_EQ(classify(m), CommShape::kNone);
}

TEST(AnalysisTest, StencilHaloMustFitOneBlock) {
  const auto decl = matrix_decl("u", 16, ElemType::kReal8, 0, 4);
  const int offsets[] = {4, 0};  // halo == block size of 4
  EXPECT_THROW((void)stencil_communication(decl, offsets, 4),
               std::invalid_argument);
}

TEST(AnalysisTest, TransposeRedistributionIsAllToAll) {
  // 2DFFT: rows -> columns on the same four processors.
  const auto decl = matrix_decl("a", 512, ElemType::kReal8, 0, 4);
  Distribution to;
  to.dims = {DistKind::kCollapsed, DistKind::kBlock};
  const auto m = redistribution_communication(decl, to, Interval{0, 4}, 4);
  EXPECT_EQ(classify(m), CommShape::kAllToAll);
  // Each pair exchanges a (512/4) x (512/4) block of real*8.
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      EXPECT_EQ(m.at(s, d), 128u * 128u * 8u) << s << "->" << d;
    }
  }
}

TEST(AnalysisTest, CrossHalfRedistributionIsPartition) {
  // T2DFFT: rows on ranks [0,2) -> columns on ranks [2,4).
  const auto decl =
      matrix_decl("a", 512, ElemType::kReal8, 0, 4, Interval{0, 2});
  Distribution to;
  to.dims = {DistKind::kCollapsed, DistKind::kBlock};
  const auto m = redistribution_communication(decl, to, Interval{2, 4}, 4);
  EXPECT_EQ(classify(m), CommShape::kPartition);
  // Each sender owns 256 rows; each receiver needs 256 columns of them.
  for (int s = 0; s < 2; ++s) {
    for (int d = 2; d < 4; ++d) {
      EXPECT_EQ(m.at(s, d), 256u * 256u * 8u);
    }
  }
  EXPECT_EQ(m.nonzero_pairs(), 4);
}

TEST(AnalysisTest, RedistributionConservesBytes) {
  // Total bytes moved + bytes staying local == whole array, for several
  // processor counts (property check).
  for (int p : {2, 4, 8}) {
    auto decl = matrix_decl("a", 64, ElemType::kReal8, 0, p);
    Distribution to;
    to.dims = {DistKind::kCollapsed, DistKind::kBlock};
    const auto m = redistribution_communication(
        decl, to, Interval{0, static_cast<std::size_t>(p)}, p);
    std::size_t local = 0;
    for (int r = 0; r < p; ++r) {
      const auto rows = block_owned(64, r, p);
      const auto cols = block_owned(64, r, p);
      local += rows.length() * cols.length() * 8;
    }
    EXPECT_EQ(m.total_bytes() + local, 64u * 64u * 8u) << "P=" << p;
  }
}

TEST(AnalysisTest, SequentialReadIsBroadcastShaped) {
  SourceProgram program;
  program.name = "seq";
  program.processors = 4;
  auto decl = matrix_decl("a", 8, ElemType::kReal4, 0, 4);
  program.arrays.emplace("a", decl);
  SequentialRead read;
  read.array = "a";
  read.element_message_bytes = 4;
  const auto analysis = analyze(program, Statement{read});
  EXPECT_EQ(analysis.shape, CommShape::kBroadcast);
  EXPECT_EQ(analysis.matrix.at(0, 1), 8u * 8u * 4u);
}

TEST(AnalysisTest, ReductionIsTreeShaped) {
  SourceProgram program;
  program.name = "hist";
  program.processors = 4;
  Reduction reduce;
  reduce.vector_bytes = 1024;
  const auto analysis = analyze(program, Statement{reduce});
  EXPECT_EQ(analysis.shape, CommShape::kTree);
  EXPECT_EQ(analysis.matrix.at(1, 0), 1024u);
  EXPECT_EQ(analysis.matrix.at(3, 2), 1024u);
  EXPECT_EQ(analysis.matrix.at(2, 0), 1024u);
  EXPECT_EQ(analysis.matrix.nonzero_pairs(), 3);
}

// ---- end-to-end: compile a SOR-like source and run it ----------------

SourceProgram sor_source() {
  SourceProgram program;
  program.name = "compiled-sor";
  program.processors = 4;
  program.iterations = 5;
  program.arrays.emplace("u", matrix_decl("u", 256, ElemType::kReal4, 0, 4));
  StencilAssign stencil;
  stencil.array = "u";
  stencil.max_offsets = {1, 1};
  stencil.flops_per_point = 5.0;
  program.body.emplace_back(stencil);
  return program;
}

TEST(LowerTest, CompiledSorRunsWithNeighborTraffic) {
  const CompiledProgram compiled = compile(sor_source());
  ASSERT_EQ(compiled.phases.size(), 1u);
  EXPECT_EQ(compiled.phases[0].analysis.shape, CommShape::kNeighbor);
  EXPECT_EQ(compiled.bytes_per_iteration(), 6u * 256u * 4u);

  sim::Simulator simulator(8);
  apps::TestbedConfig config;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), compiled.executable);

  std::set<std::pair<int, int>> pairs;
  for (const auto& p : testbed.capture().packets()) {
    if (p.bytes > 58) pairs.emplace(p.src, p.dst);
  }
  const std::set<std::pair<int, int>> expected{
      {0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}};
  EXPECT_EQ(pairs, expected);
}

TEST(LowerTest, CompiledFft2dMovesExactTransposeBytes) {
  SourceProgram program;
  program.name = "compiled-fft";
  program.processors = 4;
  program.iterations = 3;
  program.arrays.emplace("a",
                         matrix_decl("a", 128, ElemType::kReal8, 0, 4));
  program.body.emplace_back(LocalWork{1e6});
  Distribution cols;
  cols.dims = {DistKind::kCollapsed, DistKind::kBlock};
  program.body.emplace_back(Redistribute{"a", cols, Interval{0, 4}});
  program.body.emplace_back(LocalWork{1e6});

  const CompiledProgram compiled = compile(program);
  EXPECT_EQ(compiled.bytes_per_iteration(), 12u * 32u * 32u * 8u);

  sim::Simulator simulator(9);
  apps::TestbedConfig config;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), compiled.executable);
  // TCP payload is the transpose bytes plus the PVM headers.
  std::uint64_t payload = 0;
  for (const auto& p : testbed.capture().packets()) {
    if (p.bytes > 58) payload += p.bytes - 58;
  }
  const std::uint64_t expected = 3ull * 12ull * 32ull * 32ull * 8ull;
  EXPECT_GT(payload, expected);
  EXPECT_LT(payload, expected + 3 * 12 * 64 + 40000);
}

TEST(LowerTest, CompiledTaskParallelPipelineIsPartition) {
  SourceProgram program;
  program.name = "compiled-tfft";
  program.processors = 4;
  program.iterations = 2;
  program.arrays.emplace(
      "a", matrix_decl("a", 128, ElemType::kReal8, 0, 4, Interval{0, 2}));
  Distribution cols;
  cols.dims = {DistKind::kCollapsed, DistKind::kBlock};
  program.body.emplace_back(Redistribute{"a", cols, Interval{2, 4}});

  const CompiledProgram compiled = compile(program);
  EXPECT_EQ(compiled.phases[0].analysis.shape, CommShape::kPartition);

  sim::Simulator simulator(10);
  apps::TestbedConfig config;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), compiled.executable);
  for (const auto& p : testbed.capture().packets()) {
    if (p.bytes > 58) {
      EXPECT_LT(p.src, 2);
      EXPECT_GE(p.dst, 2);
    }
  }
}

TEST(LowerTest, UnknownArrayIsRejected) {
  SourceProgram program;
  program.name = "bad";
  program.processors = 4;
  StencilAssign stencil;
  stencil.array = "nope";
  stencil.max_offsets = {1, 1};
  program.body.emplace_back(stencil);
  EXPECT_THROW((void)compile(program), std::invalid_argument);
}

}  // namespace
}  // namespace fxtraf::fxc
