// Unit + property tests for the DSP substrate: FFT (against the naive DFT
// oracle), windows, periodogram, peak extraction, fundamental estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "dsp/periodogram.hpp"
#include "dsp/window.hpp"
#include "simcore/rng.hpp"

namespace fxtraf::dsp {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) {
    v = Complex{rng.next_uniform(-1, 1), rng.next_uniform(-1, 1)};
  }
  return x;
}

double max_abs_diff(const std::vector<Complex>& a,
                    const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 1000 + n);
  const auto fast = fft(x);
  const auto slow = dft_reference(x);
  EXPECT_LT(max_abs_diff(fast, slow), 1e-8 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftSizeTest, InverseRoundTrips) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 2000 + n);
  const auto back = fft(fft(x), /*inverse=*/true);
  EXPECT_LT(max_abs_diff(x, back), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 30,
                                           64, 100, 127, 128, 255, 256, 360,
                                           1000, 1024));

class BluesteinOddLengthTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(BluesteinOddLengthTest, MatchesNaiveDftOracle) {
  // Odd and prime lengths never hit the power-of-two path, so the whole
  // transform goes through the Bluestein chirp-z convolution; primes are
  // the worst case (no factorization shortcut could ever apply).
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 31337 + n);
  const auto fast = fft(x);
  const auto slow = dft_reference(x);
  ASSERT_EQ(fast.size(), n);
  EXPECT_LT(max_abs_diff(fast, slow), 1e-8 * static_cast<double>(n))
      << "size " << n;
  // And the inverse must round-trip through the same machinery.
  const auto back = fft(fast, /*inverse=*/true);
  EXPECT_LT(max_abs_diff(x, back), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(OddAndPrime, BluesteinOddLengthTest,
                         ::testing::Values(11, 101, 251, 509, 1009, 2003,
                                           999, 1215));

TEST(FftTest, ParsevalHoldsForLongNonPowerOfTwo) {
  const std::size_t n = 3000;  // exercises Bluestein
  const auto x = random_signal(n, 99);
  const auto spectrum_bins = fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : spectrum_bins) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * time_energy);
}

TEST(FftTest, RfftMatchesFullTransformPrefix) {
  sim::Rng rng(4);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.next_uniform(-1, 1);
  std::vector<Complex> cx(x.begin(), x.end());
  const auto full = fft(cx);
  const auto half = rfft(x);
  ASSERT_EQ(half.size(), 101u);
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_LT(std::abs(half[k] - full[k]), 1e-9);
  }
}

TEST(FftTest, PureToneLandsInOneBin) {
  const std::size_t n = 512;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * 8.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  const auto bins = rfft(x);
  for (std::size_t k = 0; k < bins.size(); ++k) {
    if (k == 8) {
      EXPECT_NEAR(std::abs(bins[k]), static_cast<double>(n) / 2.0, 1e-6);
    } else {
      EXPECT_LT(std::abs(bins[k]), 1e-6);
    }
  }
}

TEST(WindowTest, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WindowTest, HannEndpointsAndPeak) {
  const auto w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);  // periodic Hann peaks at n/2
}

TEST(WindowTest, PowerMatchesDirectSum) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming,
                    WindowKind::kBlackman}) {
    const auto w = make_window(kind, 100);
    double sum = 0.0;
    for (double v : w) sum += v * v;
    EXPECT_DOUBLE_EQ(window_power(kind, 100), sum);
  }
}

TEST(PeriodogramTest, SinusoidPeaksAtItsFrequency) {
  const double dt = 0.01;  // the paper's 10 ms interval
  const double f0 = 5.0;
  const std::size_t n = 4096;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 100.0 + 40.0 * std::cos(2.0 * std::numbers::pi * f0 * dt *
                                   static_cast<double>(i));
  }
  const Spectrum s = periodogram(x, dt);
  // The tone does not complete an integer number of cycles in the record,
  // so the sample mean differs slightly from the true DC level.
  EXPECT_NEAR(s.mean, 100.0, 0.1);
  EXPECT_DOUBLE_EQ(s.nyquist_hz(), 50.0);
  const std::size_t peak = s.argmax_in_band(0.1, 50.0);
  ASSERT_LT(peak, s.size());
  EXPECT_NEAR(s.frequency_hz[peak], f0, s.resolution_hz());
}

TEST(PeriodogramTest, DetrendRemovesDcSpike) {
  std::vector<double> x(1024, 7.5);
  const Spectrum s = periodogram(x, 0.01);
  EXPECT_NEAR(s.power[0], 0.0, 1e-12);
  EXPECT_NEAR(s.mean, 7.5, 1e-12);
}

TEST(PeriodogramTest, NoDetrendKeepsDc) {
  std::vector<double> x(1024, 7.5);
  PeriodogramOptions options;
  options.detrend_mean = false;
  const Spectrum s = periodogram(x, 0.01, options);
  EXPECT_GT(s.power[0], 1.0);
}

TEST(PeriodogramTest, RejectsBadInterval) {
  std::vector<double> x(8, 1.0);
  EXPECT_THROW(periodogram(x, 0.0), std::invalid_argument);
  EXPECT_THROW(periodogram(x, -1.0), std::invalid_argument);
}

TEST(PeriodogramTest, BandPowerPartitionsTotal) {
  sim::Rng rng(17);
  std::vector<double> x(2000);
  for (auto& v : x) v = rng.next_uniform(0, 10);
  const Spectrum s = periodogram(x, 0.01);
  const double total = s.band_power(0.0, s.nyquist_hz() + 1.0);
  const double low = s.band_power(0.0, 10.0);
  const double high = s.band_power(10.0 + 1e-9, s.nyquist_hz() + 1.0);
  EXPECT_NEAR(low + high, total, 1e-6 * total);
}

std::vector<double> harmonic_signal(double f0, int harmonics, double dt,
                                    std::size_t n) {
  std::vector<double> x(n, 50.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int h = 1; h <= harmonics; ++h) {
      x[i] += (30.0 / h) * std::cos(2.0 * std::numbers::pi * f0 * h * dt *
                                    static_cast<double>(i));
    }
  }
  return x;
}

TEST(PeaksTest, FindsAllHarmonics) {
  const double dt = 0.01;
  const auto x = harmonic_signal(5.0, 4, dt, 8192);
  const Spectrum s = periodogram(x, dt);
  const auto peaks = find_peaks(s, {.min_relative_power = 1e-4,
                                    .min_separation_bins = 3,
                                    .skip_dc_bins = 2,
                                    .max_peaks = 8});
  ASSERT_GE(peaks.size(), 4u);
  // Strongest first; fundamental carries the most power.
  EXPECT_NEAR(peaks[0].frequency_hz, 5.0, 2 * s.resolution_hz());
}

TEST(PeaksTest, FundamentalEstimateFromHarmonics) {
  const double dt = 0.01;
  const auto x = harmonic_signal(5.0, 4, dt, 8192);
  const Spectrum s = periodogram(x, dt);
  const auto peaks = find_peaks(s, {.max_peaks = 8});
  const auto est = estimate_fundamental(peaks, 2 * s.resolution_hz());
  EXPECT_NEAR(est.frequency_hz, 5.0, 2 * s.resolution_hz());
  EXPECT_GT(est.harmonic_power_fraction, 0.95);
  EXPECT_GE(est.harmonics_matched, 4u);
}

TEST(PeaksTest, EmptySpectrumYieldsNoPeaks) {
  Spectrum s;
  EXPECT_TRUE(find_peaks(s).empty());
  EXPECT_EQ(estimate_fundamental({}, 0.1).frequency_hz, 0.0);
}

TEST(PeaksTest, MaxPeaksIsRespected) {
  const double dt = 0.01;
  const auto x = harmonic_signal(2.0, 8, dt, 8192);
  const Spectrum s = periodogram(x, dt);
  const auto peaks = find_peaks(s, {.max_peaks = 3});
  EXPECT_EQ(peaks.size(), 3u);
}

}  // namespace
}  // namespace fxtraf::dsp
