// Tests for the compile-time traffic predictor: exact agreement with
// lowering on per-phase bytes, period detection, and cross-validation of
// the predicted fundamental and mean bandwidth against what the
// simulator actually measures for the paper's kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/source_registry.hpp"
#include "apps/testbed.hpp"
#include "core/characterization.hpp"
#include "core/qos.hpp"
#include "fx/runtime.hpp"
#include "fxc/lower.hpp"
#include "fxc/parser.hpp"
#include "fxc/sema/predictor.hpp"

namespace fxtraf::fxc {
namespace {

SourceProgram kernel_program(const char* name) {
  const auto kernel = apps::source_kernel_by_name(name);
  EXPECT_TRUE(kernel.has_value()) << name;
  return parse_source(kernel->source);
}

TEST(PredictorTest, PhaseBytesMatchLoweringExactly) {
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const SourceProgram program = parse_source(kernel.source);
    const CompiledProgram compiled = compile(program);
    const TrafficPrediction prediction = predict_traffic(program);

    EXPECT_EQ(prediction.bytes_per_iteration, compiled.bytes_per_iteration())
        << kernel.name;
    ASSERT_EQ(prediction.phases.size(), compiled.phases.size())
        << kernel.name;
    for (std::size_t i = 0; i < prediction.phases.size(); ++i) {
      EXPECT_EQ(prediction.phases[i].payload_bytes,
                compiled.phases[i].analysis.matrix.total_bytes())
          << kernel.name << " phase " << i;
      EXPECT_EQ(prediction.phases[i].analysis.shape,
                compiled.phases[i].analysis.shape)
          << kernel.name << " phase " << i;
    }
  }
}

TEST(PredictorTest, DominantShapesMatchFigureOne) {
  const struct {
    const char* kernel;
    CommShape shape;
  } expected[] = {
      {"sor", CommShape::kNeighbor},   {"fft2d", CommShape::kAllToAll},
      {"t2dfft", CommShape::kPartition}, {"seq", CommShape::kBroadcast},
      {"hist", CommShape::kTree},      {"airshed", CommShape::kAllToAll},
  };
  for (const auto& e : expected) {
    const TrafficPrediction prediction =
        predict_traffic(kernel_program(e.kernel));
    EXPECT_EQ(prediction.dominant_shape, e.shape) << e.kernel;
  }
}

TEST(PredictorTest, FftPeriodIsHalfTheIteration) {
  // The 2DFFT body is two identical local+transpose halves, so the burst
  // train repeats at twice the iteration rate.
  const TrafficPrediction p = predict_traffic(kernel_program("fft2d"));
  EXPECT_NEAR(p.period_seconds * 2.0, p.iteration_seconds,
              1e-9 * p.iteration_seconds);
}

TEST(PredictorTest, SeqPeriodLocksToRowRate) {
  // SEQ's fundamental is the row I/O pacing, not the iteration period:
  // 24 row bursts per iteration.
  const SourceProgram program = kernel_program("seq");
  const TrafficPrediction p = predict_traffic(program);
  const double rows =
      static_cast<double>(program.array("c").extents.front());
  EXPECT_NEAR(p.period_seconds * rows, p.iteration_seconds,
              1e-9 * p.iteration_seconds);
  // Row I/O is 60 ms, so the fundamental sits just under 1/60ms.
  EXPECT_GT(p.fundamental_hz, 12.0);
  EXPECT_LT(p.fundamental_hz, 1.0 / 0.060 + 0.1);
}

TEST(PredictorTest, SorPeriodIsTheWholeIteration) {
  const TrafficPrediction p = predict_traffic(kernel_program("sor"));
  EXPECT_NEAR(p.period_seconds, p.iteration_seconds,
              1e-9 * p.iteration_seconds);
}

TEST(PredictorTest, FourierModelIsConsistent) {
  const TrafficPrediction p = predict_traffic(kernel_program("fft2d"));
  EXPECT_DOUBLE_EQ(p.bandwidth_model.mean_kbs(), p.mean_bandwidth_kbs);
  ASSERT_EQ(p.bandwidth_model.components().size(), 8u);
  // Components sit at harmonics of the fundamental.
  for (std::size_t j = 0; j < p.bandwidth_model.components().size(); ++j) {
    EXPECT_NEAR(p.bandwidth_model.components()[j].frequency_hz,
                static_cast<double>(j + 1) * p.fundamental_hz,
                1e-9 * p.fundamental_hz);
  }
  // The series integrates back to its mean over one period.
  const std::size_t samples = 2048;
  double sum = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    sum += p.bandwidth_model.evaluate(p.period_seconds *
                                      static_cast<double>(i) /
                                      static_cast<double>(samples));
  }
  EXPECT_NEAR(sum / static_cast<double>(samples), p.mean_bandwidth_kbs,
              0.02 * p.mean_bandwidth_kbs + 0.5);
}

TEST(PredictorTest, StructurallyBadProgramThrows) {
  SourceProgram program;
  program.name = "bad";
  program.processors = 4;
  program.body.push_back(StencilAssign{"ghost", {1, 1}, 5.0});
  EXPECT_THROW((void)predict_traffic(program), SemaError);
}

TEST(PredictedSpecTest, PatternsAndFeasibility) {
  EXPECT_EQ(predicted_spec(kernel_program("sor")).pattern,
            fx::PatternKind::kNeighbor);
  EXPECT_EQ(predicted_spec(kernel_program("hist")).pattern,
            fx::PatternKind::kTree);

  // A small stencil array stops scaling once blocks shrink below the
  // halo; the spec prices such processor counts prohibitively.
  const SourceProgram tiny = parse_source(
      "program tiny\nprocessors 2\n"
      "array u real4 (8, 8) distribute (block, *)\n"
      "stencil u offsets (2, 0) flops 100\n");
  const core::TrafficSpec spec = predicted_spec(tiny);
  EXPECT_LT(spec.local_seconds(2), 1e6);   // feasible: block 4 > halo 2
  EXPECT_GE(spec.local_seconds(8), 1e6);   // block 1 <= halo 2
}

TEST(PredictedSpecTest, NegotiatesOverProcessors) {
  const core::TrafficSpec spec = predicted_spec(kernel_program("fft2d"));
  core::NetworkState network;
  network.min_processors = 2;
  network.max_processors = 16;
  const core::NegotiationResult result = core::negotiate(spec, network);
  EXPECT_GE(result.best.processors, 2);
  EXPECT_LE(result.best.processors, 16);
  EXPECT_GT(result.best.burst_interval_seconds, 0.0);
  EXPECT_EQ(result.sweep.size(), 15u);
}

// ---- cross-validation against the simulator ---------------------------

struct MeasuredTraffic {
  double dominant_peak_hz = 0.0;
  double mean_kbs = 0.0;
};

MeasuredTraffic measure(const CompiledProgram& compiled) {
  sim::Simulator simulator(321);
  apps::TestbedConfig config;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), compiled.executable);
  const auto c = core::characterize(testbed.capture().view());
  MeasuredTraffic measured;
  measured.mean_kbs = c.avg_bandwidth_kbs;
  double max_power = 0.0;
  for (const auto& peak : c.peaks) {
    if (peak.power > max_power) {
      max_power = peak.power;
      measured.dominant_peak_hz = peak.frequency_hz;
    }
  }
  return measured;
}

TEST(PredictorValidationTest, FundamentalWithinTenPercentOfMeasured) {
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const SourceProgram program = parse_source(kernel.source);
    const TrafficPrediction prediction = predict_traffic(program);
    const MeasuredTraffic measured = measure(compile(program));

    ASSERT_GT(measured.dominant_peak_hz, 0.0) << kernel.name;
    // Predicted period c (equivalently the fundamental) vs the strongest
    // spike of the simulator-measured spectrum.
    EXPECT_NEAR(prediction.fundamental_hz, measured.dominant_peak_hz,
                0.10 * measured.dominant_peak_hz)
        << kernel.name << ": predicted " << prediction.fundamental_hz
        << " Hz, measured " << measured.dominant_peak_hz << " Hz";
    // The analytic mean bandwidth tracks the measured lifetime average.
    EXPECT_NEAR(prediction.mean_bandwidth_kbs, measured.mean_kbs,
                0.15 * measured.mean_kbs)
        << kernel.name << ": predicted " << prediction.mean_bandwidth_kbs
        << " KB/s, measured " << measured.mean_kbs << " KB/s";
  }
}

}  // namespace
}  // namespace fxtraf::fxc
