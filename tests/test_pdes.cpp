// Parallel-in-trial PDES: shard-plan geometry, and the engine's core
// promise — the trace digest is bitwise identical for every worker
// count (sim_threads 1 vs N), clean and under fault plans, because
// shard boundaries, seeds, and cross-shard injection order are pure
// functions of (topology, trial seed).
//
// Run under -DFXTRAF_SANITIZE=thread this is also the data-race gate
// for the whole sharded stack (links, injector streams, capture merge).
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/trial.hpp"
#include "ethernet/frame.hpp"
#include "ethernet/topology.hpp"
#include "pdes/shard_plan.hpp"
#include "pvm/vm.hpp"
#include "trace/digest.hpp"

namespace fxtraf {
namespace {

TEST(ShardPlanTest, SharedBusIsOneShard) {
  eth::TopologySpec spec;  // kSharedBus
  const pdes::ShardPlan plan = pdes::plan_shards(spec, 8);
  EXPECT_EQ(plan.shards, 1);
  EXPECT_FALSE(plan.sharded);
  for (int h = 0; h < 8; ++h) EXPECT_EQ(plan.shard_of(h), 0);
}

TEST(ShardPlanTest, StarPartitionsHostsContiguously) {
  eth::TopologySpec spec;
  spec.kind = eth::TopologySpec::Kind::kStar;
  spec.link_rate_bps = 100e6;
  const pdes::ShardPlan plan = pdes::plan_shards(spec, 16);
  // 16 hosts / 4 = 4 host groups + the fabric shard.
  EXPECT_EQ(plan.shards, 5);
  EXPECT_TRUE(plan.sharded);
  EXPECT_EQ(plan.fabric_shard, 0);
  int prev = plan.shard_of(0);
  EXPECT_EQ(prev, 1);
  for (int h = 1; h < 16; ++h) {
    const int s = plan.shard_of(h);
    EXPECT_GE(s, prev);          // contiguous blocks
    EXPECT_LE(s, prev + 1);
    EXPECT_GE(s, 1);             // never on the fabric
    EXPECT_LT(s, plan.shards);
    prev = s;
  }
  EXPECT_EQ(prev, 4);  // every shard actually used
  // Lookahead = minimum-size frame serialization + propagation.
  const sim::Duration wire = eth::byte_time_at(
      eth::kMinWireBytes + eth::kPreambleBytes, spec.link_rate_bps);
  EXPECT_EQ(plan.lookahead.ns(), (wire + spec.propagation).ns());
}

TEST(ShardPlanTest, WorkerCountNeverChangesThePlan) {
  eth::TopologySpec spec;
  spec.kind = eth::TopologySpec::Kind::kTree;
  spec.switches = 4;
  const pdes::ShardPlan a = pdes::plan_shards(spec, 32);
  const pdes::ShardPlan b = pdes::plan_shards(spec, 32);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.host_shard, b.host_shard);
  EXPECT_EQ(a.lookahead.ns(), b.lookahead.ns());
}

apps::TrialScenario star_scenario(std::uint64_t seed, int threads) {
  apps::TrialScenario s;
  s.kernel = "2dfft";
  s.scale = 0.05;
  s.processors = 8;  // two host shards + fabric: control posts cross too
  s.seed = seed;
  s.sim_threads = threads;
  s.testbed.topology.kind = eth::TopologySpec::Kind::kStar;
  s.testbed.topology.link_rate_bps = 100e6;
  return s;
}

TEST(PdesDeterminismTest, StarDigestIdenticalAcrossWorkerCounts) {
  const apps::TrialRun one = apps::run_trial(star_scenario(7, 1));
  const apps::TrialRun two = apps::run_trial(star_scenario(7, 2));
  const apps::TrialRun four = apps::run_trial(star_scenario(7, 4));
  ASSERT_GT(one.packets_seen, 0u);
  EXPECT_GT(one.pdes_windows, 0u);
  EXPECT_EQ(one.pdes_shards, 3);
  EXPECT_EQ(trace::to_string(one.digest), trace::to_string(two.digest));
  EXPECT_EQ(trace::to_string(one.digest), trace::to_string(four.digest));
  EXPECT_EQ(one.packets_seen, two.packets_seen);
  EXPECT_EQ(one.packets_seen, four.packets_seen);
  EXPECT_EQ(one.sim_seconds, four.sim_seconds);
  EXPECT_EQ(one.events_executed, four.events_executed);
  EXPECT_EQ(one.pdes_windows, four.pdes_windows);
}

TEST(PdesDeterminismTest, StarFaultGoldenAcrossWorkerCounts) {
  // BER + forced-FCS frame faults and a mid-run host crash window: the
  // per-direction fault streams and the seed-split host schedules must
  // land on the owning shards identically for any worker count.
  auto faulted = [](int threads) {
    apps::TrialScenario s = star_scenario(11, threads);
    s.faults.frame_ber = 1e-5;
    s.faults.corrupt_every_nth = 50;
    s.faults.host_faults.push_back(
        {/*host=*/2, /*start_s=*/0.02, /*duration_s=*/0.05,
         /*cpu_factor=*/0.0, /*network_down=*/true});
    return apps::run_trial(s);
  };
  const apps::TrialRun one = faulted(1);
  const apps::TrialRun four = faulted(4);
  ASSERT_GT(one.packets_seen, 0u);
  EXPECT_EQ(trace::to_string(one.digest), trace::to_string(four.digest));
  EXPECT_EQ(one.packets_seen, four.packets_seen);
  EXPECT_EQ(one.events_executed, four.events_executed);
  // finish() already threw if the conservation audit failed.
  EXPECT_TRUE(one.audit.ok);
  EXPECT_TRUE(four.audit.ok);
}

TEST(PdesDeterminismTest, TreeDaemonRouteGoldenAcrossWorkerCounts) {
  // Daemon-routed messaging on a tree exercises the remote expect()
  // path (cross-shard control posts) plus a daemon crash/restart.
  auto daemons = [](int threads) {
    apps::TrialScenario s = star_scenario(13, threads);
    s.testbed.topology.kind = eth::TopologySpec::Kind::kTree;
    s.testbed.topology.switches = 2;
    s.testbed.pvm.route = pvm::RouteMode::kDaemon;
    s.faults.daemon_outages.push_back(
        {/*host=*/1, /*start_s=*/0.05, /*down_s=*/0.4});
    return apps::run_trial(s);
  };
  const apps::TrialRun one = daemons(1);
  const apps::TrialRun four = daemons(4);
  ASSERT_GT(one.packets_seen, 0u);
  EXPECT_EQ(trace::to_string(one.digest), trace::to_string(four.digest));
  EXPECT_EQ(one.packets_seen, four.packets_seen);
  EXPECT_EQ(one.events_executed, four.events_executed);
}

TEST(PdesPhysicsTest, SerialAndShardedAgreeOnTrafficVolume) {
  // PDES is not bitwise-comparable to the serial scheduler (cross-shard
  // same-instant ties fold into the digest in a different order, and
  // control posts ride one lookahead of latency), but it must simulate
  // the same physics: same program, almost the same traffic.
  apps::TrialScenario serial = star_scenario(5, 0);
  apps::TrialScenario sharded = star_scenario(5, 2);
  const apps::TrialRun a = apps::run_trial(serial);
  const apps::TrialRun b = apps::run_trial(sharded);
  ASSERT_GT(a.packets_seen, 0u);
  ASSERT_GT(b.packets_seen, 0u);
  const double packets_ratio = static_cast<double>(b.packets_seen) /
                               static_cast<double>(a.packets_seen);
  EXPECT_NEAR(packets_ratio, 1.0, 0.05);
  EXPECT_NEAR(b.sim_seconds / a.sim_seconds, 1.0, 0.05);
}

TEST(PdesPhysicsTest, SharedBusFallsBackToOneShard) {
  // sim_threads on the measured shared bus: one collision domain is one
  // shard, so the engine runs (deterministically) without parallelism.
  apps::TrialScenario s;
  s.kernel = "2dfft";
  s.scale = 0.05;
  s.seed = 3;
  s.sim_threads = 4;
  const apps::TrialRun run = apps::run_trial(s);
  ASSERT_GT(run.packets_seen, 0u);
  EXPECT_EQ(run.pdes_shards, 1);
}

TEST(PdesPhysicsTest, FlowFidelityRejectsSimThreads) {
  apps::TrialScenario s;
  s.kernel = "2dfft";
  s.fidelity = apps::Fidelity::kFlow;
  s.sim_threads = 2;
  EXPECT_THROW((void)apps::run_trial(s), std::invalid_argument);
}

}  // namespace
}  // namespace fxtraf
