// Tests for the Fx collectives: every Figure-1 pattern completes, moves
// the right amount of data along the right directed pairs, and the
// connection-count formulas of section 7.1 hold.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/testbed.hpp"
#include "fx/patterns.hpp"
#include "fx/runtime.hpp"
#include "pvm/task.hpp"

namespace fxtraf::fx {
namespace {

struct Fixture {
  sim::Simulator sim{33};
  apps::Testbed testbed;

  explicit Fixture(int hosts = 4) : testbed(sim, config(hosts)) {
    testbed.start();
  }
  static apps::TestbedConfig config(int hosts) {
    apps::TestbedConfig c;
    c.workstations = hosts;
    c.pvm.keepalives_enabled = false;  // keep traces pattern-only
    return c;
  }

  /// Directed pairs that carried TCP *data* (not bare ACKs).
  [[nodiscard]] std::set<std::pair<int, int>> data_pairs() const {
    std::set<std::pair<int, int>> pairs;
    for (const auto& p : testbed.capture().packets()) {
      if (p.proto == net::IpProto::kTcp && p.bytes > 58) {
        pairs.emplace(p.src, p.dst);
      }
    }
    return pairs;
  }
};

using PatternFn =
    std::function<sim::Co<void>(Collectives&, int rank, std::size_t, int)>;

RunningProgram run_pattern(Fixture& f, int processors, std::size_t bytes,
                           PatternFn fn) {
  FxProgram program;
  program.name = "pattern-test";
  program.processors = processors;
  program.rank_body = [bytes, fn](FxContext& ctx, int rank) -> sim::Co<void> {
    co_await fn(ctx.collectives(), rank, bytes, /*tag=*/1);
  };
  RunningProgram running = launch(f.testbed.vm(), program);
  f.sim.run();
  running.rethrow_failures();
  EXPECT_TRUE(running.all_done());
  return running;
}

TEST(PatternsTest, NeighborExchangesAlongChainOnly) {
  Fixture f;
  run_pattern(f, 4, 4096,
              [](Collectives& c, int r, std::size_t b, int t) {
                return c.neighbor_exchange(r, b, t);
              });
  const auto pairs = f.data_pairs();
  const std::set<std::pair<int, int>> expected{
      {0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}};
  EXPECT_EQ(pairs, expected);
}

TEST(PatternsTest, AllToAllUsesEveryDirectedPair) {
  Fixture f;
  run_pattern(f, 4, 8192, [](Collectives& c, int r, std::size_t b, int t) {
    return c.all_to_all(r, b, t);
  });
  EXPECT_EQ(f.data_pairs().size(), 12u);  // P(P-1)
}

TEST(PatternsTest, PartitionSendsHalfToHalf) {
  Fixture f;
  run_pattern(f, 4, 8192, [](Collectives& c, int r, std::size_t b, int t) {
    return c.partition(r, b, t);
  });
  const std::set<std::pair<int, int>> expected{
      {0, 2}, {0, 3}, {1, 2}, {1, 3}};
  EXPECT_EQ(f.data_pairs(), expected);
}

TEST(PatternsTest, BroadcastFansOutFromRoot) {
  Fixture f;
  run_pattern(f, 4, 2048, [](Collectives& c, int r, std::size_t b, int t) {
    return c.broadcast(r, /*root=*/0, b, t);
  });
  const std::set<std::pair<int, int>> expected{{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(f.data_pairs(), expected);
}

TEST(PatternsTest, TreeReduceFollowsTheTree) {
  Fixture f;
  run_pattern(f, 4, 1024, [](Collectives& c, int r, std::size_t b, int t) {
    return c.tree_reduce(r, b, t);
  });
  const std::set<std::pair<int, int>> expected{{1, 0}, {3, 2}, {2, 0}};
  EXPECT_EQ(f.data_pairs(), expected);
}

TEST(PatternsTest, TreeBroadcastIsReverseTree) {
  Fixture f;
  run_pattern(f, 4, 1024, [](Collectives& c, int r, std::size_t b, int t) {
    return c.tree_broadcast(r, b, t);
  });
  const std::set<std::pair<int, int>> expected{{0, 2}, {0, 1}, {2, 3}};
  EXPECT_EQ(f.data_pairs(), expected);
}

TEST(PatternsTest, TreeRequiresPowerOfTwo) {
  Fixture f(6);
  FxProgram program;
  program.name = "bad-tree";
  program.processors = 6;
  program.rank_body = [](FxContext& ctx, int rank) -> sim::Co<void> {
    co_await ctx.collectives().tree_reduce(rank, 64, 1);
  };
  RunningProgram running = launch(f.testbed.vm(), program);
  f.sim.run();
  EXPECT_THROW(running.rethrow_failures(), std::invalid_argument);
}

TEST(PatternsTest, EightRankAllToAllCompletes) {
  Fixture f(8);
  run_pattern(f, 8, 2048, [](Collectives& c, int r, std::size_t b, int t) {
    return c.all_to_all(r, b, t);
  });
  EXPECT_EQ(f.data_pairs().size(), 56u);  // 8*7
}

TEST(ConnectionCountTest, MatchesSection71Formulas) {
  EXPECT_EQ(connections_used(PatternKind::kAllToAll, 4), 12);
  EXPECT_EQ(connections_used(PatternKind::kNeighbor, 4), 6);
  EXPECT_EQ(connections_used(PatternKind::kPartition, 4), 4);
  EXPECT_EQ(connections_used(PatternKind::kBroadcast, 4), 3);
  EXPECT_EQ(connections_used(PatternKind::kTree, 4), 6);
  // P^2/4 for an equal partition (paper's expression), any even P.
  for (int p = 2; p <= 16; p += 2) {
    EXPECT_EQ(connections_used(PatternKind::kPartition, p), p * p / 4);
  }
}

TEST(ConnectionCountTest, ConcurrentConnectionsArePositive) {
  for (auto kind : {PatternKind::kNeighbor, PatternKind::kAllToAll,
                    PatternKind::kPartition, PatternKind::kBroadcast,
                    PatternKind::kTree}) {
    for (int p = 2; p <= 16; p *= 2) {
      EXPECT_GT(concurrent_connections(kind, p), 0)
          << to_string(kind) << " P=" << p;
      EXPECT_LE(concurrent_connections(kind, p),
                std::max(connections_used(kind, p), 1))
          << to_string(kind) << " P=" << p;
    }
  }
}

TEST(RuntimeTest, DeadlockIsDetected) {
  Fixture f;
  FxProgram program;
  program.name = "deadlock";
  program.processors = 2;
  // Rank 0 waits for a message nobody sends.
  program.rank_body = [](FxContext& ctx, int rank) -> sim::Co<void> {
    if (rank == 0) co_await ctx.vm().task(0).recv(1, 999);
  };
  EXPECT_THROW(run_program(f.testbed.vm(), program), std::runtime_error);
}

TEST(RuntimeTest, LaunchRejectsOversizedProgram) {
  Fixture f;
  FxProgram program;
  program.name = "too-big";
  program.processors = 99;
  program.rank_body = [](FxContext&, int) -> sim::Co<void> { co_return; };
  EXPECT_THROW((void)launch(f.testbed.vm(), program), std::invalid_argument);
}

}  // namespace
}  // namespace fxtraf::fx
