// Unit tests for the workstation model: CPU timing, deschedule injection
// statistics, and interaction with the scheduler configuration.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "host/workstation.hpp"

namespace fxtraf::host {
namespace {

struct Rig {
  sim::Simulator sim{42};
  eth::Segment segment{sim};
};

TEST(WorkstationTest, ComputeTimeMapsFlopsLinearly) {
  Rig rig;
  WorkstationConfig config;
  config.mflops = 25.0;
  Workstation ws(rig.sim, rig.segment, 0, config);
  EXPECT_DOUBLE_EQ(ws.compute_time(25e6).seconds(), 1.0);
  EXPECT_DOUBLE_EQ(ws.compute_time(2.5e6).seconds(), 0.1);
  EXPECT_DOUBLE_EQ(ws.compute_time(0).seconds(), 0.0);
}

TEST(WorkstationTest, ComputeWithoutDeschedulingIsExact) {
  Rig rig;
  WorkstationConfig config;
  config.mflops = 10.0;
  config.deschedule_probability = 0.0;
  Workstation ws(rig.sim, rig.segment, 0, config);
  auto p = sim::spawn(ws.compute(50e6));  // 5 seconds at 10 MFLOPS
  rig.sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_DOUBLE_EQ(rig.sim.now().seconds(), 5.0);
  EXPECT_EQ(ws.stats().compute_phases, 1u);
  EXPECT_EQ(ws.stats().deschedules, 0u);
}

sim::Co<void> compute_n(Workstation& ws, int n, double flops) {
  for (int i = 0; i < n; ++i) co_await ws.compute(flops);
}

TEST(WorkstationTest, DeschedulingAddsTimeAndCountsEvents) {
  Rig rig;
  WorkstationConfig config;
  config.mflops = 25.0;
  config.deschedule_probability = 1.0;  // every phase pauses
  config.mean_deschedule = sim::millis(50);
  Workstation ws(rig.sim, rig.segment, 0, config);
  auto p = sim::spawn(compute_n(ws, 100, 2.5e6));  // 100 x 0.1 s base
  rig.sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(ws.stats().deschedules, 100u);
  const double base = 10.0;
  const double extra = rig.sim.now().seconds() - base;
  EXPECT_GT(extra, 1.0);  // ~100 x 50 ms on average
  EXPECT_LT(extra, 20.0);
  EXPECT_NEAR(static_cast<double>(ws.stats().descheduled_ns) * 1e-9, extra,
              1e-6);
}

TEST(WorkstationTest, DeschedProbabilityScalesFrequency) {
  auto deschedules_at = [](double prob) {
    Rig rig;
    WorkstationConfig config;
    config.deschedule_probability = prob;
    Workstation ws(rig.sim, rig.segment, 0, config);
    auto p = sim::spawn(compute_n(ws, 1000, 1e5));
    rig.sim.run();
    EXPECT_TRUE(p.done());
    return ws.stats().deschedules;
  };
  const auto low = deschedules_at(0.02);
  const auto high = deschedules_at(0.5);
  EXPECT_GT(high, low * 5);
  EXPECT_NEAR(static_cast<double>(low), 20.0, 15.0);
  EXPECT_NEAR(static_cast<double>(high), 500.0, 80.0);
}

TEST(WorkstationTest, BusyOccupiesExactDuration) {
  Rig rig;
  Workstation ws(rig.sim, rig.segment, 0, {});
  auto p = sim::spawn(ws.busy(sim::millis(123)));
  rig.sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_DOUBLE_EQ(rig.sim.now().seconds(), 0.123);
}

TEST(TestbedTest, BuildsRequestedTopology) {
  sim::Simulator simulator(1);
  apps::TestbedConfig config;
  config.workstations = 9;  // the paper's nine Alphas
  apps::Testbed testbed(simulator, config);
  EXPECT_EQ(testbed.size(), 9);
  EXPECT_EQ(testbed.vm().ntasks(), 9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(testbed.workstation(i).id(), i);
  }
}

}  // namespace
}  // namespace fxtraf::host
