// Unit tests for the CSMA/CD Ethernet model: frame sizing, serialization,
// carrier sense, collisions with backoff resolution, promiscuous taps.
#include <gtest/gtest.h>

#include <memory>

#include "ethernet/frame.hpp"
#include "ethernet/nic.hpp"
#include "ethernet/segment.hpp"
#include "simcore/simulator.hpp"

namespace fxtraf::eth {
namespace {

Frame make_frame(net::HostId src, net::HostId dst, std::size_t payload) {
  net::IpDatagram d;
  d.src = src;
  d.dst = dst;
  d.proto = net::IpProto::kTcp;
  d.payload_bytes = payload;
  Frame f;
  f.src = src;
  f.dst = dst;
  f.datagram = std::make_shared<const net::IpDatagram>(d);
  return f;
}

TEST(FrameTest, RecordedSizeMatchesPaperConvention) {
  // Pure TCP ACK: 14 + 20 + 20 + 0 + 4 = 58 bytes, the paper's minimum.
  EXPECT_EQ(make_frame(0, 1, 0).recorded_bytes(), 58u);
  // Full MSS segment: 14 + 20 + 20 + 1460 + 4 = 1518, the paper's maximum.
  EXPECT_EQ(make_frame(0, 1, 1460).recorded_bytes(), 1518u);
}

TEST(FrameTest, WireSizePadsToMinimum) {
  EXPECT_EQ(make_frame(0, 1, 0).wire_bytes(), 64u);
  EXPECT_EQ(make_frame(0, 1, 100).wire_bytes(), 158u);
}

TEST(FrameTest, TransmissionTimeAtTenMegabit) {
  // 1518 + 8 preamble bytes at 0.8 us/byte = 1220.8 us.
  EXPECT_EQ(make_frame(0, 1, 1460).transmission_time().ns(), 1'220'800);
}

struct Lan {
  sim::Simulator sim{12345};
  Segment segment{sim};
  Nic nic0{sim, segment, 0};
  Nic nic1{sim, segment, 1};
  Nic nic2{sim, segment, 2};
};

TEST(SegmentTest, DeliversToDestinationOnly) {
  Lan lan;
  int at0 = 0, at1 = 0, at2 = 0;
  lan.nic0.set_receive_handler([&](const Frame&) { ++at0; });
  lan.nic1.set_receive_handler([&](const Frame&) { ++at1; });
  lan.nic2.set_receive_handler([&](const Frame&) { ++at2; });
  lan.nic0.send(make_frame(0, 1, 500));
  lan.sim.run();
  EXPECT_EQ(at0, 0);
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(at2, 0);
  EXPECT_EQ(lan.segment.stats().frames_delivered, 1u);
}

TEST(SegmentTest, TapSeesEveryFramePromiscuously) {
  Lan lan;
  int tapped = 0;
  lan.segment.add_tap([&](sim::SimTime, const Frame&) { ++tapped; });
  lan.nic0.send(make_frame(0, 1, 100));
  lan.nic1.send(make_frame(1, 2, 100));
  lan.nic2.send(make_frame(2, 0, 100));
  lan.sim.run();
  EXPECT_EQ(tapped, 3);
}

TEST(SegmentTest, BackToBackFramesAreSerializedWithIfg) {
  Lan lan;
  std::vector<sim::SimTime> ends;
  lan.segment.add_tap(
      [&](sim::SimTime t, const Frame&) { ends.push_back(t); });
  lan.nic0.send(make_frame(0, 1, 1460));
  lan.nic0.send(make_frame(0, 1, 1460));
  lan.sim.run();
  ASSERT_EQ(ends.size(), 2u);
  const auto gap = ends[1] - ends[0];
  // Second frame takes frame time + at least one interframe gap.
  EXPECT_GE(gap, make_frame(0, 1, 1460).transmission_time() + kInterframeGap);
}

TEST(SegmentTest, SimultaneousSendersCollideThenResolve) {
  Lan lan;
  int delivered = 0;
  lan.segment.add_tap([&](sim::SimTime, const Frame&) { ++delivered; });
  // Both NICs sense idle at t=0 and transmit together: guaranteed
  // collision, resolved by random backoff.
  lan.nic0.send(make_frame(0, 2, 1000));
  lan.nic1.send(make_frame(1, 2, 1000));
  lan.sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_GE(lan.segment.stats().collisions, 1u);
  EXPECT_EQ(lan.nic0.stats().excessive_collision_drops, 0u);
  EXPECT_EQ(lan.nic1.stats().excessive_collision_drops, 0u);
}

TEST(SegmentTest, ManyContendersAllEventuallyDeliver) {
  sim::Simulator sim(99);
  Segment segment(sim);
  std::vector<std::unique_ptr<Nic>> nics;
  for (net::HostId i = 0; i < 9; ++i) {
    nics.push_back(std::make_unique<Nic>(sim, segment, i));
  }
  int delivered = 0;
  segment.add_tap([&](sim::SimTime, const Frame&) { ++delivered; });
  for (auto& nic : nics) {
    for (int k = 0; k < 5; ++k) {
      nic->send(make_frame(nic->station(),
                           static_cast<net::HostId>((nic->station() + 1) % 9),
                           700));
    }
  }
  sim.run();
  EXPECT_EQ(delivered, 9 * 5);
}

TEST(SegmentTest, UtilizationIsBoundedByOne) {
  Lan lan;
  for (int i = 0; i < 50; ++i) lan.nic0.send(make_frame(0, 1, 1460));
  lan.sim.run();
  const double u = lan.segment.utilization(lan.sim.now());
  EXPECT_GT(u, 0.8);  // saturated one-way stream
  EXPECT_LE(u, 1.0);
}

TEST(SegmentTest, DeferringStationWaitsForCarrier) {
  Lan lan;
  std::vector<std::pair<net::HostId, sim::SimTime>> log;
  lan.segment.add_tap([&](sim::SimTime t, const Frame& f) {
    log.emplace_back(f.src, t);
  });
  lan.nic0.send(make_frame(0, 2, 1460));
  // nic1 wants to send mid-transmission: must defer, not collide.
  lan.sim.schedule_at(sim::SimTime{500'000},
                      [&] { lan.nic1.send(make_frame(1, 2, 100)); });
  lan.sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(lan.segment.stats().collisions, 0u);
  EXPECT_EQ(log[0].first, 0);
  EXPECT_EQ(log[1].first, 1);
}

}  // namespace
}  // namespace fxtraf::eth
