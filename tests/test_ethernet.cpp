// Unit tests for the CSMA/CD Ethernet model: frame sizing, serialization,
// carrier sense, collisions with backoff resolution, promiscuous taps.
#include <gtest/gtest.h>

#include <memory>

#include "ethernet/duplex_link.hpp"
#include "ethernet/frame.hpp"
#include "ethernet/nic.hpp"
#include "ethernet/segment.hpp"
#include "simcore/simulator.hpp"

namespace fxtraf::eth {
namespace {

Frame make_frame(net::HostId src, net::HostId dst, std::size_t payload) {
  net::IpDatagram d;
  d.src = src;
  d.dst = dst;
  d.proto = net::IpProto::kTcp;
  d.payload_bytes = payload;
  Frame f;
  f.src = src;
  f.dst = dst;
  f.datagram = std::make_shared<const net::IpDatagram>(d);
  return f;
}

TEST(FrameTest, RecordedSizeMatchesPaperConvention) {
  // Pure TCP ACK: 14 + 20 + 20 + 0 + 4 = 58 bytes, the paper's minimum.
  EXPECT_EQ(make_frame(0, 1, 0).recorded_bytes(), 58u);
  // Full MSS segment: 14 + 20 + 20 + 1460 + 4 = 1518, the paper's maximum.
  EXPECT_EQ(make_frame(0, 1, 1460).recorded_bytes(), 1518u);
}

TEST(FrameTest, WireSizePadsToMinimum) {
  EXPECT_EQ(make_frame(0, 1, 0).wire_bytes(), 64u);
  EXPECT_EQ(make_frame(0, 1, 100).wire_bytes(), 158u);
}

TEST(FrameTest, TransmissionTimeAtTenMegabit) {
  // 1518 + 8 preamble bytes at 0.8 us/byte = 1220.8 us.
  EXPECT_EQ(make_frame(0, 1, 1460).transmission_time().ns(), 1'220'800);
}

struct Lan {
  sim::Simulator sim{12345};
  Segment segment{sim};
  Nic nic0{sim, segment, 0};
  Nic nic1{sim, segment, 1};
  Nic nic2{sim, segment, 2};
};

TEST(SegmentTest, DeliversToDestinationOnly) {
  Lan lan;
  int at0 = 0, at1 = 0, at2 = 0;
  lan.nic0.set_receive_handler([&](const Frame&) { ++at0; });
  lan.nic1.set_receive_handler([&](const Frame&) { ++at1; });
  lan.nic2.set_receive_handler([&](const Frame&) { ++at2; });
  lan.nic0.send(make_frame(0, 1, 500));
  lan.sim.run();
  EXPECT_EQ(at0, 0);
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(at2, 0);
  EXPECT_EQ(lan.segment.stats().frames_delivered, 1u);
}

TEST(SegmentTest, TapSeesEveryFramePromiscuously) {
  Lan lan;
  int tapped = 0;
  lan.segment.add_tap([&](sim::SimTime, const Frame&) { ++tapped; });
  lan.nic0.send(make_frame(0, 1, 100));
  lan.nic1.send(make_frame(1, 2, 100));
  lan.nic2.send(make_frame(2, 0, 100));
  lan.sim.run();
  EXPECT_EQ(tapped, 3);
}

TEST(SegmentTest, BackToBackFramesAreSerializedWithIfg) {
  Lan lan;
  std::vector<sim::SimTime> ends;
  lan.segment.add_tap(
      [&](sim::SimTime t, const Frame&) { ends.push_back(t); });
  lan.nic0.send(make_frame(0, 1, 1460));
  lan.nic0.send(make_frame(0, 1, 1460));
  lan.sim.run();
  ASSERT_EQ(ends.size(), 2u);
  const auto gap = ends[1] - ends[0];
  // Second frame takes frame time + at least one interframe gap.
  EXPECT_GE(gap, make_frame(0, 1, 1460).transmission_time() + kInterframeGap);
}

TEST(SegmentTest, SimultaneousSendersCollideThenResolve) {
  Lan lan;
  int delivered = 0;
  lan.segment.add_tap([&](sim::SimTime, const Frame&) { ++delivered; });
  // Both NICs sense idle at t=0 and transmit together: guaranteed
  // collision, resolved by random backoff.
  lan.nic0.send(make_frame(0, 2, 1000));
  lan.nic1.send(make_frame(1, 2, 1000));
  lan.sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_GE(lan.segment.stats().collisions, 1u);
  EXPECT_EQ(lan.nic0.stats().excessive_collision_drops, 0u);
  EXPECT_EQ(lan.nic1.stats().excessive_collision_drops, 0u);
}

TEST(SegmentTest, ManyContendersAllEventuallyDeliver) {
  sim::Simulator sim(99);
  Segment segment(sim);
  std::vector<std::unique_ptr<Nic>> nics;
  for (net::HostId i = 0; i < 9; ++i) {
    nics.push_back(std::make_unique<Nic>(sim, segment, i));
  }
  int delivered = 0;
  segment.add_tap([&](sim::SimTime, const Frame&) { ++delivered; });
  for (auto& nic : nics) {
    for (int k = 0; k < 5; ++k) {
      nic->send(make_frame(nic->station(),
                           static_cast<net::HostId>((nic->station() + 1) % 9),
                           700));
    }
  }
  sim.run();
  EXPECT_EQ(delivered, 9 * 5);
}

TEST(SegmentTest, UtilizationIsBoundedByOne) {
  Lan lan;
  for (int i = 0; i < 50; ++i) lan.nic0.send(make_frame(0, 1, 1460));
  lan.sim.run();
  const double u = lan.segment.utilization(lan.sim.now());
  EXPECT_GT(u, 0.8);  // saturated one-way stream
  EXPECT_LE(u, 1.0);
}

TEST(SegmentTest, BusyNsIsWireOccupancyOnHalfDuplex) {
  // One wire: busy_ns for a single clean frame is exactly its
  // transmission time, and busy_ns / elapsed is the classic utilization
  // (directions() == 1 makes Link::utilization the identity rescale).
  Lan lan;
  lan.nic0.send(make_frame(0, 1, 1000));
  lan.sim.run();
  const Frame f = make_frame(0, 1, 1000);
  EXPECT_EQ(lan.segment.directions(), 1);
  EXPECT_EQ(lan.segment.stats().busy_ns,
            static_cast<std::uint64_t>(f.transmission_time().ns()));
  EXPECT_LE(lan.segment.utilization(lan.sim.now()), 1.0);
}

TEST(DuplexLinkTest, SimultaneousBidirectionalTrafficDoesNotCollide) {
  sim::Simulator sim{777};
  DuplexLink link{sim, DuplexLinkConfig{100e6, sim::micros(0.5)}};
  Nic a{sim, link, 0};
  Nic b{sim, link, 1};
  int at_a = 0, at_b = 0;
  a.set_receive_handler([&](const Frame&) { ++at_a; });
  b.set_receive_handler([&](const Frame&) { ++at_b; });
  a.send(make_frame(0, 1, 1000));
  b.send(make_frame(1, 0, 1000));
  sim.run();
  EXPECT_EQ(at_a, 1);
  EXPECT_EQ(at_b, 1);
  EXPECT_EQ(link.stats().collisions, 0u);
  EXPECT_EQ(a.stats().collisions, 0u);
  EXPECT_EQ(b.stats().collisions, 0u);
  EXPECT_EQ(link.stats().frames_delivered, 2u);
}

TEST(DuplexLinkTest, BusyNsSumsDirectionsAndUtilizationStaysBounded) {
  // Full duplex: each direction is an independent wire, so two
  // simultaneous frames contribute 2x one frame's serialization time to
  // busy_ns — which may exceed elapsed time.  utilization() divides by
  // directions() == 2 and stays in [0, 1].
  sim::Simulator sim{777};
  DuplexLink link{sim, DuplexLinkConfig{100e6, sim::micros(0.5)}};
  Nic a{sim, link, 0};
  Nic b{sim, link, 1};
  a.send(make_frame(0, 1, 1000));
  b.send(make_frame(1, 0, 1000));
  sim.run();
  const std::uint64_t one_frame = static_cast<std::uint64_t>(
      make_frame(0, 1, 1000).transmission_time_at(100e6).ns());
  EXPECT_EQ(link.directions(), 2);
  EXPECT_EQ(link.stats().busy_ns, 2 * one_frame);
  EXPECT_EQ(link.direction_stats(0).busy_ns, one_frame);
  EXPECT_EQ(link.direction_stats(1).busy_ns, one_frame);
  // The two transmissions overlapped, so single-wire accounting would
  // exceed the elapsed-time bound here; the direction-normalized
  // utilization must not.
  EXPECT_GT(static_cast<double>(link.stats().busy_ns),
            0.9 * static_cast<double>(sim.now().ns()));
  EXPECT_LE(link.utilization(sim.now()), 1.0);
}

TEST(DuplexLinkTest, MacTimingScalesWithLinkRate) {
  sim::Simulator sim{1};
  DuplexLink fast{sim, DuplexLinkConfig{100e6, sim::micros(0.5)}};
  // 96 and 512 bit times at 100 Mb/s: a tenth of the 10 Mb/s constants.
  EXPECT_EQ(fast.interframe_gap().ns(), kInterframeGap.ns() / 10);
  EXPECT_EQ(fast.slot_time().ns(), kSlotTime.ns() / 10);
  DuplexLink gig{sim, DuplexLinkConfig{1000e6, sim::micros(0.5)}};
  EXPECT_EQ(gig.interframe_gap().ns(), kInterframeGap.ns() / 100);
}

TEST(NicTest, BoundedQueueTailDropsWithAttribution) {
  Lan lan;
  lan.nic0.set_queue_limit(1);
  std::vector<NicDropReason> reasons;
  lan.nic0.set_drop_hook(
      [&](const Frame&, NicDropReason r) { reasons.push_back(r); });
  // All three offered before the first frame's interframe-gap wait ends:
  // one occupies the queue, two are tail-dropped at enqueue.
  lan.nic0.send(make_frame(0, 1, 100));
  lan.nic0.send(make_frame(0, 1, 100));
  lan.nic0.send(make_frame(0, 1, 100));
  lan.sim.run();
  const NicStats& s = lan.nic0.stats();
  EXPECT_EQ(s.frames_enqueued, 3u);
  EXPECT_EQ(s.frames_sent, 1u);
  EXPECT_EQ(s.queue_tail_drops, 2u);
  EXPECT_EQ(s.queue_tail_drop_bytes, 2u * make_frame(0, 1, 100).recorded_bytes());
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], NicDropReason::kQueueOverflow);
  EXPECT_EQ(reasons[1], NicDropReason::kQueueOverflow);
}

TEST(SegmentTest, DeferringStationWaitsForCarrier) {
  Lan lan;
  std::vector<std::pair<net::HostId, sim::SimTime>> log;
  lan.segment.add_tap([&](sim::SimTime t, const Frame& f) {
    log.emplace_back(f.src, t);
  });
  lan.nic0.send(make_frame(0, 2, 1460));
  // nic1 wants to send mid-transmission: must defer, not collide.
  lan.sim.schedule_at(sim::SimTime{500'000},
                      [&] { lan.nic1.send(make_frame(1, 2, 100)); });
  lan.sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(lan.segment.stats().collisions, 0u);
  EXPECT_EQ(log[0].first, 0);
  EXPECT_EQ(log[1].first, 1);
}

}  // namespace
}  // namespace fxtraf::eth
