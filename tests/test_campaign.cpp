// Campaign engine unit tests: seed splitting, exact aggregation math,
// failure isolation, and the JSON report.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "campaign/aggregate.hpp"
#include "campaign/engine.hpp"
#include "campaign/report.hpp"
#include "campaign/seed.hpp"

namespace fxtraf::campaign {
namespace {

TEST(SeedSplitTest, DeterministicAndDistinct) {
  EXPECT_EQ(split_seed(42, 7), split_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t master : {0ull, 1ull, 42ull}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      seen.insert(split_seed(master, i));
    }
  }
  EXPECT_EQ(seen.size(), 3000u);  // no collisions across masters/indices
  EXPECT_NE(split_seed(0, 0), 0u);  // never the simulator's "unseeded" 0
}

TEST(SeedSplitTest, CounterStreamsDoNotAlias) {
  // (master, i+1) must not equal (master+1, i) — the classic additive
  // counter failure mode the two-round mix exists to prevent.
  for (std::uint64_t m = 0; m < 50; ++m) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      EXPECT_NE(split_seed(m, i + 1), split_seed(m + 1, i));
    }
  }
}

TEST(AggregateTest, KnownInputsExact) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const MetricAggregate agg = aggregate(values);
  EXPECT_EQ(agg.stats.count, 4u);
  EXPECT_DOUBLE_EQ(agg.stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(agg.stats.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.stats.max, 4.0);
  // Population sd = sqrt(5/4); sample sd = sqrt(5/3).
  EXPECT_NEAR(agg.stats.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_NEAR(agg.sample_stddev, std::sqrt(5.0 / 3.0), 1e-12);
  // t_{3, 0.975} = 3.182 (table value) times sd / sqrt(4).
  EXPECT_NEAR(agg.ci95_half_width, 3.182 * std::sqrt(5.0 / 3.0) / 2.0,
              1e-9);
}

TEST(AggregateTest, EdgeCounts) {
  const MetricAggregate empty = aggregate(std::span<const double>{});
  EXPECT_EQ(empty.stats.count, 0u);
  EXPECT_DOUBLE_EQ(empty.ci95_half_width, 0.0);
  const double one[] = {7.5};
  const MetricAggregate single = aggregate(one);
  EXPECT_DOUBLE_EQ(single.stats.mean, 7.5);
  EXPECT_DOUBLE_EQ(single.sample_stddev, 0.0);
  EXPECT_DOUBLE_EQ(single.ci95_half_width, 0.0);
}

TEST(AggregateTest, StudentTQuantiles) {
  EXPECT_DOUBLE_EQ(student_t_975(0), 0.0);
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-9);
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-9);
  EXPECT_NEAR(student_t_975(1000), 1.959964, 1e-9);  // normal asymptote
}

TEST(AggregateTest, MetricsAggregateAcrossRows) {
  const std::map<std::string, double> rows[] = {
      {{"a", 1.0}, {"b", 10.0}},
      {{"a", 3.0}, {"b", 30.0}},
      {{"a", 5.0}},  // a row may miss a metric; "b" aggregates over 2
  };
  const auto out = aggregate_metrics(rows);
  EXPECT_DOUBLE_EQ(out.at("a").stats.mean, 3.0);
  EXPECT_EQ(out.at("a").stats.count, 3u);
  EXPECT_DOUBLE_EQ(out.at("b").stats.mean, 20.0);
  EXPECT_EQ(out.at("b").stats.count, 2u);
}

TrialSpec tiny_kernel(const char* label) {
  TrialSpec spec;
  spec.label = label;
  spec.scenario.kernel = "seq";
  spec.scenario.scale = 0.2;  // one iteration
  spec.scenario.seed = 31337;
  return spec;
}

TrialSpec throwing_trial() {
  TrialSpec spec;
  spec.label = "boom";
  spec.scenario.kernel = "boom";
  spec.scenario.make_program = []() -> fx::FxProgram {
    throw std::runtime_error("trial exploded");
  };
  return spec;
}

TEST(EngineTest, FailedTrialIsIsolated) {
  const std::vector<TrialSpec> specs = {tiny_kernel("ok-1"),
                                        throwing_trial(),
                                        tiny_kernel("ok-2")};
  CampaignOptions options;
  options.threads = 2;
  options.characterize = false;
  const CampaignResult result = run_campaign(specs, options);

  ASSERT_EQ(result.trials.size(), 3u);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_TRUE(result.trials[0].ok);
  EXPECT_FALSE(result.trials[1].ok);
  EXPECT_NE(result.trials[1].error.find("trial exploded"),
            std::string::npos);
  EXPECT_TRUE(result.trials[1].metrics.empty());
  EXPECT_TRUE(result.trials[2].ok);
  // Both ok trials ran the same kernel+seed; the aggregate covers
  // exactly those two and is untouched by the failure.
  const auto& packets = result.metric("packets");
  EXPECT_EQ(packets.stats.count, 2u);
  EXPECT_GT(packets.stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(packets.stats.stddev, 0.0);
}

TEST(EngineTest, UnknownKernelFailsCleanly) {
  TrialSpec spec;
  spec.scenario.kernel = "no-such-kernel";
  const CampaignResult result = run_campaign({spec});
  ASSERT_EQ(result.trials.size(), 1u);
  EXPECT_FALSE(result.trials[0].ok);
  EXPECT_NE(result.trials[0].error.find("unknown kernel"),
            std::string::npos);
}

TEST(EngineTest, AnalyzerMetricsReachAggregate) {
  const auto specs = seed_sweep(tiny_kernel("seq"), 3, 5);
  CampaignOptions options;
  options.threads = 1;
  options.characterize = false;
  const CampaignResult result = run_campaign(
      specs, options,
      [](const TrialSpec&, const apps::TrialRun& run,
         std::map<std::string, double>& metrics) {
        metrics["double_packets"] = 2.0 * static_cast<double>(
                                              run.packets.size());
      });
  ASSERT_EQ(result.failures, 0u);
  EXPECT_DOUBLE_EQ(result.metric("double_packets").stats.mean,
                   2.0 * result.metric("packets").stats.mean);
}

TEST(ReportTest, JsonIsWellFormedAndComplete) {
  const std::vector<TrialSpec> specs = {tiny_kernel("ok"),
                                        throwing_trial()};
  CampaignOptions options;
  options.threads = 1;
  options.characterize = false;
  const CampaignResult result = run_campaign(specs, options);
  const std::string json = json_string(result, "unit \"quoted\" title");

  // Balanced braces/brackets outside strings => structurally sound.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"unit \\\"quoted\\\" title\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\":1"), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"trial exploded\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"fnv1a\""), std::string::npos);
}

}  // namespace
}  // namespace fxtraf::campaign
