// Unit tests for the simulated TCP: handshake, segmentation, ACK policy,
// windows, write backpressure, and loss recovery under frame drops.
#include <gtest/gtest.h>

#include <memory>

#include "ethernet/nic.hpp"
#include "ethernet/segment.hpp"
#include "net/stack.hpp"
#include "net/tcp.hpp"
#include "simcore/coro.hpp"
#include "trace/capture.hpp"

namespace fxtraf::net {
namespace {

struct TwoHosts {
  sim::Simulator sim{7};
  eth::Segment segment{sim};
  eth::Nic nic_a{sim, segment, 0};
  eth::Nic nic_b{sim, segment, 1};
  Stack stack_a{sim, nic_a};
  Stack stack_b{sim, nic_b};
  trace::Capture capture{segment};
};

sim::Co<void> connect_only(TcpConnection& c, bool& connected) {
  co_await c.connect();
  connected = true;
}

TEST(TcpTest, HandshakeEstablishesBothEnds) {
  TwoHosts net;
  auto& accept_queue = net.stack_b.tcp_listen(5000);
  TcpConnection& client = net.stack_a.tcp_connect(1, 5000);
  bool connected = false;
  auto p = sim::spawn(connect_only(client, connected));
  TcpConnection* server = nullptr;
  auto acceptor = sim::spawn(
      [](Stack::AcceptQueue& q, TcpConnection*& out) -> sim::Co<void> {
        out = co_await q.pop();
      }(accept_queue, server));
  net.sim.run();
  EXPECT_TRUE(connected);
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(client.established());
  EXPECT_TRUE(server->established());
  EXPECT_TRUE(p.done() && acceptor.done());
  // SYN, SYN+ACK, ACK: three minimum-size packets.
  EXPECT_EQ(net.capture.size(), 3u);
  for (const auto& pkt : net.capture.packets()) EXPECT_EQ(pkt.bytes, 58u);
}

struct Transfer {
  TwoHosts net;
  TcpConnection* client = nullptr;
  TcpConnection* server = nullptr;
  bool received = false;

  explicit Transfer(std::size_t bytes) {
    auto& accept_queue = net.stack_b.tcp_listen(5000);
    client = &net.stack_a.tcp_connect(1, 5000);
    keep_.push_back(sim::spawn(
        [](TcpConnection& c, std::size_t n) -> sim::Co<void> {
          co_await c.connect();
          c.send(n);
          co_await c.wait_drained();
        }(*client, bytes)));
    keep_.push_back(sim::spawn(
        [](Stack::AcceptQueue& q, Transfer& t, std::size_t n) -> sim::Co<void> {
          t.server = co_await q.pop();
          co_await t.server->recv(n);
          t.received = true;
        }(accept_queue, *this, bytes)));
  }

  [[nodiscard]] bool all_done() const {
    for (const auto& p : keep_) {
      if (!p.done()) return false;
    }
    return true;
  }

  std::vector<sim::Process> keep_;
};

TEST(TcpTest, TransfersSegmentAtMss) {
  Transfer t(4000);  // 2 x 1460 + 1080
  t.net.sim.run();
  EXPECT_TRUE(t.received);
  EXPECT_TRUE(t.all_done());
  int full = 0, remainder = 0, acks = 0;
  for (const auto& p : t.net.capture.packets()) {
    if (p.bytes == 1518) ++full;
    if (p.bytes == 58) ++acks;
    if (p.bytes == 1080 + 58) ++remainder;
  }
  EXPECT_EQ(full, 2);
  EXPECT_EQ(remainder, 1);
  EXPECT_GE(acks, 4);  // handshake ACK + data acks
  EXPECT_EQ(t.client->stats().bytes_sent, 4000u);
  EXPECT_EQ(t.server->stats().bytes_received, 4000u);
  EXPECT_EQ(t.client->stats().retransmissions, 0u);
}

TEST(TcpTest, LargeTransferRespectsWindowAndCompletes) {
  Transfer t(1 << 20);  // 1 MB >> 32 KB window
  t.net.sim.run();
  EXPECT_TRUE(t.received);
  EXPECT_TRUE(t.all_done());
  EXPECT_EQ(t.server->stats().bytes_received, std::size_t{1} << 20);
}

TEST(TcpTest, DelayedAckFiresForLoneSegment) {
  Transfer t(100);  // single small segment: no second segment to force ack
  t.net.sim.run();
  EXPECT_TRUE(t.received);
  // The receiver's delayed-ack timer must have produced an ack so the
  // sender's drain completes.
  EXPECT_TRUE(t.all_done());
  EXPECT_GE(t.server->stats().pure_acks_sent, 1u);
}

TEST(TcpTest, AckEveryOtherSegmentOnStream) {
  Transfer t(29200);  // 20 full segments
  t.net.sim.run();
  EXPECT_TRUE(t.received);
  // ~10 acks for 20 segments (plus handshake/tail), not 20.
  std::uint64_t acks = t.server->stats().pure_acks_sent;
  EXPECT_GE(acks, 9u);
  EXPECT_LE(acks, 13u);
}

TEST(TcpTest, WriteBackpressureBlocksUntilDrained) {
  TwoHosts net;
  auto& accept_queue = net.stack_b.tcp_listen(5000);
  TcpConnection& client = net.stack_a.tcp_connect(1, 5000);
  std::vector<double> write_times;
  auto writer = sim::spawn(
      [](sim::Simulator& s, TcpConnection& c,
         std::vector<double>& times) -> sim::Co<void> {
        co_await c.connect();
        for (int i = 0; i < 8; ++i) {
          co_await c.write(32768);
          times.push_back(s.now().seconds());
        }
      }(net.sim, client, write_times));
  auto acceptor = sim::spawn(
      [](Stack::AcceptQueue& q) -> sim::Co<void> {
        TcpConnection* server = co_await q.pop();
        co_await server->recv(8 * 32768);
      }(accept_queue));
  net.sim.run();
  EXPECT_TRUE(writer.done() && acceptor.done());
  ASSERT_EQ(write_times.size(), 8u);
  // 8 x 32 KB at ~1.1 MB/s effective: later writes must be paced by the
  // network, not instantaneous.
  EXPECT_GT(write_times.back() - write_times.front(), 0.15);
}

TEST(TcpTest, RecoversFromDroppedFrameViaRetransmit) {
  TwoHosts net;
  // Corrupt the 6th TCP data frame in flight; go-back-N must recover.
  int data_frames = 0;
  net.segment.set_fault_injector([&](const eth::Frame& f) {
    return f.datagram->proto == IpProto::kTcp &&
           f.datagram->payload_bytes > 0 && ++data_frames == 6;
  });
  auto& accept_queue = net.stack_b.tcp_listen(5000);
  TcpConnection& client = net.stack_a.tcp_connect(1, 5000);
  bool done_recv = false;
  auto writer = sim::spawn([](TcpConnection& c) -> sim::Co<void> {
    co_await c.connect();
    c.send(20000);
    co_await c.wait_drained();
  }(client));
  auto acceptor = sim::spawn(
      [](Stack::AcceptQueue& q, bool& flag) -> sim::Co<void> {
        TcpConnection* server = co_await q.pop();
        co_await server->recv(20000);
        flag = true;
      }(accept_queue, done_recv));
  net.sim.run();
  EXPECT_TRUE(done_recv);
  EXPECT_TRUE(writer.done() && acceptor.done());
  EXPECT_GE(client.stats().retransmissions, 1u);
}

TEST(TcpTest, RecoversFromDroppedSynAndSynAck) {
  TwoHosts net;
  int control_frames = 0;
  net.segment.set_fault_injector([&](const eth::Frame& f) {
    // Drop the first two handshake frames (SYN and the retransmitted
    // SYN's SYN+ACK), forcing timer-driven recovery of the handshake.
    return f.datagram->payload_bytes == 0 && f.datagram->tcp.syn &&
           ++control_frames <= 2;
  });
  auto& accept_queue = net.stack_b.tcp_listen(5000);
  TcpConnection& client = net.stack_a.tcp_connect(1, 5000);
  bool connected = false;
  auto p = sim::spawn(connect_only(client, connected));
  auto acceptor = sim::spawn([](Stack::AcceptQueue& q) -> sim::Co<void> {
    co_await q.pop();
  }(accept_queue));
  net.sim.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(p.done() && acceptor.done());
}

TEST(TcpTest, SlowStartGatesTheInitialBurst) {
  auto data_before_first_ack = [](bool slow_start) {
    sim::Simulator simulator(7);
    eth::Segment segment(simulator);
    eth::Nic nic_a(simulator, segment, 0), nic_b(simulator, segment, 1);
    TcpConfig cfg;
    cfg.slow_start = slow_start;
    Stack stack_a(simulator, nic_a, cfg), stack_b(simulator, nic_b, cfg);
    int data_streak = 0;
    bool streak_done = false;
    segment.add_tap([&](sim::SimTime, const eth::Frame& f) {
      if (streak_done || !f.datagram->tcp.has_ack) return;
      if (f.datagram->payload_bytes > 0 && f.src == 0) {
        ++data_streak;  // client data before the first data-ack
      } else if (f.src == 1 && data_streak > 0) {
        streak_done = true;
      }
    });
    auto& accept_queue = stack_b.tcp_listen(5000);
    TcpConnection& client = stack_a.tcp_connect(1, 5000);
    auto writer = sim::spawn([](TcpConnection& c) -> sim::Co<void> {
      co_await c.connect();
      c.send(30000);
      co_await c.wait_drained();
    }(client));
    auto reader = sim::spawn(
        [](Stack::AcceptQueue& q) -> sim::Co<void> {
          TcpConnection* server = co_await q.pop();
          co_await server->recv(30000);
        }(accept_queue));
    simulator.run();
    EXPECT_TRUE(writer.done() && reader.done());
    return data_streak;
  };
  // Slow start: only the initial congestion window's worth leaves before
  // the first ack.  Without it the sender streams ahead; on the shared
  // medium the receiver's ack interleaves after a frame or two, so the
  // unlimited streak is short too — but strictly longer.
  const int gated = data_before_first_ack(true);
  const int ungated = data_before_first_ack(false);
  EXPECT_EQ(gated, 2);
  EXPECT_GT(ungated, gated);
}

TEST(TcpTest, UdpDatagramRoundTrip) {
  TwoHosts net;
  std::size_t got = 0;
  net.stack_b.udp_bind(99, [&](const IpDatagram& d) {
    got = d.payload_bytes;
  });
  net.stack_a.udp_send(1, 98, 99, 512);
  net.sim.run();
  EXPECT_EQ(got, 512u);
  ASSERT_EQ(net.capture.size(), 1u);
  // 14 + 20 + 8 + 512 + 4 = 558 recorded bytes.
  EXPECT_EQ(net.capture.packets()[0].bytes, 558u);
  EXPECT_EQ(net.capture.packets()[0].proto, IpProto::kUdp);
}

}  // namespace
}  // namespace fxtraf::net
