// Tests for the symbolic traffic engine: SymPoly algebra, phase-graph
// structure, agreement with the numeric predictor across a P sweep, the
// smooth closed forms, and the acceptance gate — symbolic envelopes at
// P in {2, 4, 8} within 10% of the simulator-measured fundamentals for
// every registered kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/source_registry.hpp"
#include "apps/testbed.hpp"
#include "core/characterization.hpp"
#include "fx/runtime.hpp"
#include "fxc/lower.hpp"
#include "fxc/parser.hpp"
#include "fxc/sema/phase_graph.hpp"
#include "fxc/sema/predictor.hpp"
#include "fxc/sema/symbolic.hpp"

namespace fxtraf::fxc {
namespace {

SourceProgram kernel_program(const char* name) {
  const auto kernel = apps::source_kernel_by_name(name);
  EXPECT_TRUE(kernel.has_value()) << name;
  return parse_source(kernel->source);
}

void expect_rel_near(double expected, double actual, double rel,
                     const std::string& what) {
  const double scale = std::max(std::abs(expected), 1e-12);
  EXPECT_NEAR(actual, expected, rel * scale)
      << what << ": expected " << expected << ", got " << actual;
}

// --- SymPoly ----------------------------------------------------------

TEST(SymPolyTest, ArithmeticAndEvaluation) {
  const SymPoly f = SymPoly::n() * SymPoly::n() + SymPoly::p().scaled(3.0) +
                    SymPoly(2.0);
  EXPECT_DOUBLE_EQ(f.eval(10.0, 4.0), 100.0 + 12.0 + 2.0);
  const SymPoly g = f * SymPoly::p();
  EXPECT_DOUBLE_EQ(g.eval(10.0, 4.0), (100.0 + 12.0 + 2.0) * 4.0);
}

TEST(SymPolyTest, LikeTermsMergeAndCancel) {
  const SymPoly two_n = SymPoly::n() + SymPoly::n();
  ASSERT_EQ(two_n.terms().size(), 1u);
  EXPECT_DOUBLE_EQ(two_n.terms().front().coeff, 2.0);
  EXPECT_TRUE((SymPoly::n() - SymPoly::n()).is_zero());
  EXPECT_TRUE(SymPoly(0.0).is_zero());
}

TEST(SymPolyTest, NegativeExponentsAndMonomialDivision) {
  // T / P^2: the transpose tile.
  const SymPoly tile =
      (SymPoly::n() * SymPoly::n()).scaled(8.0).divided_by(
          SymPoly::p() * SymPoly::p());
  EXPECT_DOUBLE_EQ(tile.eval(512.0, 4.0), 512.0 * 512.0 * 8.0 / 16.0);
  ASSERT_EQ(tile.terms().size(), 1u);
  EXPECT_EQ(tile.terms().front().p_pow, -2);
  EXPECT_THROW((void)SymPoly::n().divided_by(SymPoly::n() + SymPoly::p()),
               std::invalid_argument);
  EXPECT_THROW((void)SymPoly::n().divided_by(SymPoly(0.0)),
               std::invalid_argument);
}

TEST(SymPolyTest, LogTermsCarryTreeDepth) {
  const SymPoly depth = SymPoly::term(1.0, 0, 0, 1);
  EXPECT_DOUBLE_EQ(depth.eval(1.0, 8.0), 3.0);
  EXPECT_DOUBLE_EQ(depth.eval(1.0, 2.0), 1.0);
}

TEST(SymPolyTest, NearComparesStructurally) {
  const SymPoly a = SymPoly::n().scaled(2.0) + SymPoly(1.0);
  const SymPoly b = SymPoly::n().scaled(2.0 + 1e-12) + SymPoly(1.0);
  EXPECT_TRUE(a.near(b));
  EXPECT_FALSE(a.near(SymPoly::n().scaled(2.1) + SymPoly(1.0)));
  EXPECT_FALSE(a.near(SymPoly::p().scaled(2.0) + SymPoly(1.0)));
}

TEST(SymPolyTest, ToStringNamesTheVariables) {
  const std::string text =
      (SymPoly::n() * SymPoly::n()).scaled(1024.0)
          .divided_by(SymPoly::p() * SymPoly::p())
          .to_string();
  EXPECT_NE(text.find("N"), std::string::npos) << text;
  EXPECT_NE(text.find("P"), std::string::npos) << text;
}

// --- phase graph ------------------------------------------------------

TEST(PhaseGraphTest, RankSetBasics) {
  RankSet set = RankSet::range(8, Interval{2, 5});
  EXPECT_EQ(set.count(), 3);
  EXPECT_TRUE(set.contains(2));
  EXPECT_FALSE(set.contains(5));
  EXPECT_TRUE(set.subset_of(RankSet::range(8, Interval{0, 8})));
  EXPECT_FALSE(RankSet::range(8, Interval{0, 8}).subset_of(set));
  EXPECT_TRUE(set.intersects(RankSet::range(8, Interval{4, 6})));
  EXPECT_FALSE(set.intersects(RankSet::range(8, Interval{5, 8})));
}

TEST(PhaseGraphTest, Fft2dAlternatesComputeAndTranspose) {
  const PhaseGraph graph = build_phase_graph(kernel_program("fft2d"));
  ASSERT_EQ(graph.nodes.size(), 4u);
  EXPECT_EQ(graph.nodes[0].kind, PhaseKind::kCompute);
  EXPECT_EQ(graph.nodes[1].kind, PhaseKind::kRedistribute);
  EXPECT_EQ(graph.nodes[2].kind, PhaseKind::kCompute);
  EXPECT_EQ(graph.nodes[3].kind, PhaseKind::kRedistribute);
  EXPECT_EQ(graph.nodes[1].shape, CommShape::kAllToAll);
  EXPECT_EQ(graph.nodes[1].senders.count(), 4);
  EXPECT_EQ(graph.nodes[1].receivers.count(), 4);
  EXPECT_GT(graph.nodes[1].payload_bytes, 0u);
  EXPECT_EQ(graph.nodes[1].payload_bytes, graph.nodes[3].payload_bytes);
  // Every rank participates in every phase, in program order.
  ASSERT_EQ(graph.rank_sequence.size(), 4u);
  for (const auto& sequence : graph.rank_sequence) {
    EXPECT_EQ(sequence.size(), 4u);
  }
}

TEST(PhaseGraphTest, SendAndRecvAreMatched) {
  const SourceProgram program = parse_source(
      "program p\nprocessors 4\niterations 2\n"
      "array a real8 (256, 256) distribute (block, *) on 0..2\n"
      "local 1e6\n"
      "send a to 2..4\n"
      "recv a from 0..2 on 2..4\n");
  const PhaseGraph graph = build_phase_graph(program);
  ASSERT_EQ(graph.nodes.size(), 3u);
  EXPECT_EQ(graph.nodes[1].kind, PhaseKind::kSend);
  EXPECT_EQ(graph.nodes[2].kind, PhaseKind::kRecv);
  ASSERT_EQ(graph.match.size(), 3u);
  EXPECT_EQ(graph.match[1], 2u);
  EXPECT_EQ(graph.match[2], 1u);
  bool found_match_edge = false;
  for (const PhaseEdge& edge : graph.edges) {
    found_match_edge |= edge.kind == PhaseEdge::Kind::kMatch &&
                        edge.from == 1 && edge.to == 2;
  }
  EXPECT_TRUE(found_match_edge);
}

TEST(PhaseGraphTest, UnpairedSendHasNoMatch) {
  const SourceProgram program = parse_source(
      "program p\nprocessors 4\niterations 1\n"
      "array a real8 (256, 256) distribute (block, *) on 0..2\n"
      "send a to 2..4\n");
  const PhaseGraph graph = build_phase_graph(program);
  ASSERT_EQ(graph.nodes.size(), 1u);
  EXPECT_EQ(graph.match[0], kNoMatch);
}

// --- symbolic engine vs the numeric predictor -------------------------

TEST(SymbolicTest, ReproducesNumericPredictorAtReferenceBinding) {
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const SourceProgram program = parse_source(kernel.source);
    const SymbolicTraffic model = analyze_symbolic(program);
    const TrafficPrediction numeric = predict_traffic(program);
    const TrafficEnvelope env = model.evaluate(model.ref_processors);

    const std::string tag = kernel.name + " @ref";
    expect_rel_near(numeric.iteration_seconds, env.iteration_seconds, 1e-6,
                    tag + " iteration");
    expect_rel_near(numeric.period_seconds, env.period_seconds, 1e-6,
                    tag + " period");
    expect_rel_near(numeric.local_seconds, env.local_seconds, 1e-6,
                    tag + " local");
    expect_rel_near(numeric.burst_bytes, env.burst_bytes, 1e-6,
                    tag + " burst");
    expect_rel_near(static_cast<double>(numeric.bytes_per_iteration),
                    env.bytes_per_iteration, 1e-6, tag + " bytes");
    EXPECT_EQ(model.dominant_shape, numeric.dominant_shape) << kernel.name;
  }
}

TEST(SymbolicTest, TracksNumericPredictorAcrossProcessorSweep) {
  // The numeric predictor re-derives everything from exact matrices at
  // each P; the symbolic envelope extrapolates from the P=4 calibration.
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const SourceProgram program = parse_source(kernel.source);
    const SymbolicTraffic model = analyze_symbolic(program);
    for (int p : {2, 4, 8}) {
      const TrafficPrediction numeric =
          predict_traffic(scale_to_processors(program, p));
      const TrafficEnvelope env = model.evaluate(p);
      const std::string tag = kernel.name + " @P=" + std::to_string(p);
      expect_rel_near(numeric.iteration_seconds, env.iteration_seconds, 0.05,
                      tag + " iteration");
      expect_rel_near(numeric.period_seconds, env.period_seconds, 0.05,
                      tag + " period");
      expect_rel_near(numeric.local_seconds, env.local_seconds, 0.05,
                      tag + " local");
      expect_rel_near(numeric.burst_bytes, env.burst_bytes, 0.05,
                      tag + " burst");
      expect_rel_near(static_cast<double>(numeric.bytes_per_iteration),
                      env.bytes_per_iteration, 0.05, tag + " bytes");
    }
  }
}

TEST(SymbolicTest, ClosedFormsTrackExactEvaluation) {
  // The smooth polynomials replace ceil() segmentation and frozen
  // efficiency branches; they must stay close to the exact arithmetic.
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const SymbolicTraffic model =
        analyze_symbolic(parse_source(kernel.source));
    const double n = static_cast<double>(model.n_binding);
    for (int p : {4, 8}) {
      const TrafficEnvelope env = model.evaluate(p);
      const std::string tag = kernel.name + " poly @P=" + std::to_string(p);
      expect_rel_near(env.local_seconds, model.local_poly.eval(n, p), 0.10,
                      tag + " l");
      expect_rel_near(env.burst_bytes, model.burst_poly.eval(n, p), 0.10,
                      tag + " b");
      expect_rel_near(env.period_seconds, model.period_poly.eval(n, p), 0.10,
                      tag + " c");
      expect_rel_near(env.bytes_per_iteration,
                      model.bytes_per_iteration.eval(n, p), 0.10,
                      tag + " bytes");
    }
  }
}

TEST(SymbolicTest, StructuralPeriodDivisorsMatchThePaper) {
  EXPECT_EQ(analyze_symbolic(kernel_program("fft2d")).period_divisor, 2);
  EXPECT_EQ(analyze_symbolic(kernel_program("t2dfft")).period_divisor, 2);
  EXPECT_EQ(analyze_symbolic(kernel_program("airshed")).period_divisor, 2);
  EXPECT_EQ(analyze_symbolic(kernel_program("sor")).period_divisor, 1);
  EXPECT_EQ(analyze_symbolic(kernel_program("hist")).period_divisor, 1);
  EXPECT_TRUE(analyze_symbolic(kernel_program("seq")).io_paced);
}

TEST(SymbolicTest, DescribeListsTheClosedForms) {
  const std::string text =
      analyze_symbolic(kernel_program("fft2d")).describe();
  EXPECT_NE(text.find("l(N,P)"), std::string::npos) << text;
  EXPECT_NE(text.find("b(N,P)"), std::string::npos) << text;
  EXPECT_NE(text.find("c(N,P)"), std::string::npos) << text;
}

TEST(SymbolicTest, SemaGateStillApplies) {
  const SourceProgram program = parse_source(
      "program p\nprocessors 8\n"
      "array u real4 (16, 16) distribute (block, *)\n"
      "stencil u offsets (3, 0)\n");
  EXPECT_THROW((void)analyze_symbolic(program), SemaError);
}

// --- acceptance gate: symbolic envelope vs the simulator --------------

struct MeasuredTraffic {
  double dominant_peak_hz = 0.0;
  double mean_kbs = 0.0;
};

MeasuredTraffic measure(const CompiledProgram& compiled) {
  sim::Simulator simulator(321);
  apps::TestbedConfig config;
  config.workstations = compiled.processors;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), compiled.executable);
  const auto c = core::characterize(testbed.capture().view());
  MeasuredTraffic measured;
  measured.mean_kbs = c.avg_bandwidth_kbs;
  double max_power = 0.0;
  for (const auto& peak : c.peaks) {
    if (peak.power > max_power) {
      max_power = peak.power;
      measured.dominant_peak_hz = peak.frequency_hz;
    }
  }
  return measured;
}

TEST(SymbolicValidationTest, EnvelopeWithinTenPercentOfSimulatorAcrossP) {
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const SourceProgram program = parse_source(kernel.source);
    const SymbolicTraffic model = analyze_symbolic(program);
    for (int p : {2, 4, 8}) {
      const MeasuredTraffic measured =
          measure(compile(scale_to_processors(program, p)));
      const TrafficEnvelope env = model.evaluate(p);
      const std::string tag = kernel.name + " @P=" + std::to_string(p);

      ASSERT_GT(measured.dominant_peak_hz, 0.0) << tag;
      EXPECT_NEAR(env.fundamental_hz, measured.dominant_peak_hz,
                  0.10 * measured.dominant_peak_hz)
          << tag << ": symbolic " << env.fundamental_hz << " Hz, measured "
          << measured.dominant_peak_hz << " Hz";
      EXPECT_NEAR(env.mean_bandwidth_kbs, measured.mean_kbs,
                  0.15 * measured.mean_kbs)
          << tag << ": symbolic " << env.mean_bandwidth_kbs
          << " KB/s, measured " << measured.mean_kbs << " KB/s";
    }
  }
}

}  // namespace
}  // namespace fxtraf::fxc
