// Tests for the tooling layer: the fxc pretty-printer round trip, the
// kernel registry, and the text report generator.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "apps/testbed.hpp"
#include "core/report.hpp"
#include "fx/runtime.hpp"
#include "fxc/lower.hpp"
#include "fxc/parser.hpp"
#include "fxc/printer.hpp"

namespace fxtraf {
namespace {

constexpr const char* kRoundTripSource = R"(
program roundtrip
processors 4
iterations 7
array u real4 (512, 256) distribute (block, *) on 0..4
array v complex16 (64, 64) distribute (*, block) on 2..4
stencil u offsets (2, 0) flops 7.5
local 3.25e6
redistribute u (*, block) on 0..4
read v element 8 row_io 120ms
reduce bytes 1024 flops 2e6 root 1
broadcast bytes 512 root 1
send u to 2..4 on 0..2
recv u from 0..2 on 2..4
sync
)";

TEST(PrinterTest, SourceRoundTripsThroughPrint) {
  const fxc::SourceProgram original = fxc::parse_source(kRoundTripSource);
  const std::string printed = fxc::to_source(original);
  const fxc::SourceProgram reparsed = fxc::parse_source(printed);

  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.processors, original.processors);
  EXPECT_EQ(reparsed.iterations, original.iterations);
  ASSERT_EQ(reparsed.arrays.size(), original.arrays.size());
  for (const auto& [name, decl] : original.arrays) {
    const fxc::ArrayDecl& r = reparsed.array(name);
    EXPECT_EQ(r.extents, decl.extents);
    EXPECT_EQ(r.type, decl.type);
    EXPECT_EQ(r.distribution, decl.distribution);
    EXPECT_EQ(r.processors.lo, decl.processors.lo);
    EXPECT_EQ(r.processors.hi, decl.processors.hi);
  }
  ASSERT_EQ(reparsed.body.size(), original.body.size());
  // Equivalence of behaviour: identical per-phase analysis.
  const auto a = fxc::compile(original);
  const auto b = fxc::compile(reparsed);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].analysis.shape, b.phases[i].analysis.shape) << i;
    EXPECT_EQ(a.phases[i].analysis.matrix.total_bytes(),
              b.phases[i].analysis.matrix.total_bytes())
        << i;
  }
}

TEST(RegistryTest, AllSixKernelsPresent) {
  const auto kernels = apps::all_kernels(0.1);
  ASSERT_EQ(kernels.size(), 6u);
  for (const auto& entry : kernels) {
    EXPECT_FALSE(entry.description.empty());
    EXPECT_TRUE(entry.program.rank_body != nullptr) << entry.name;
    EXPECT_EQ(entry.program.processors, 4);
  }
}

TEST(RegistryTest, LookupIsCaseInsensitiveWithAliases) {
  EXPECT_TRUE(apps::kernel_by_name("SOR").has_value());
  EXPECT_TRUE(apps::kernel_by_name("fft2d").has_value());
  EXPECT_EQ(apps::kernel_by_name("fft")->name, "2dfft");
  EXPECT_EQ(apps::kernel_by_name("tfft")->name, "t2dfft");
  EXPECT_FALSE(apps::kernel_by_name("nope").has_value());
}

TEST(RegistryTest, RegistryKernelRuns) {
  const auto entry = apps::kernel_by_name("hist", 0.05);
  ASSERT_TRUE(entry.has_value());
  sim::Simulator simulator(12);
  apps::TestbedConfig config;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), entry->program);
  EXPECT_GT(testbed.capture().size(), 20u);
}

TEST(ReportTest, ContainsTheExpectedSections) {
  // Small deterministic trace: bursts on two connections.
  std::vector<trace::PacketRecord> packets;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 30; ++i) {
      trace::PacketRecord r;
      r.timestamp = sim::SimTime{
          static_cast<std::int64_t>((burst * 0.5 + i * 1e-3) * 1e9)};
      r.bytes = 1518;
      r.src = static_cast<net::HostId>(i % 2);
      r.dst = static_cast<net::HostId>(2 + i % 2);
      packets.push_back(r);
    }
  }
  const std::string report = core::report_string(packets, "demo");
  EXPECT_NE(report.find("=== demo ==="), std::string::npos);
  EXPECT_NE(report.find("-- aggregate --"), std::string::npos);
  EXPECT_NE(report.find("-- connection 0 -> 2 --"), std::string::npos);
  EXPECT_NE(report.find("-- connection 1 -> 3 --"), std::string::npos);
  EXPECT_NE(report.find("fundamental"), std::string::npos);
  EXPECT_NE(report.find("bursts"), std::string::npos);
}

TEST(ReportTest, EmptyTraceIsGraceful) {
  const std::string report = core::report_string({}, "empty");
  EXPECT_NE(report.find("(empty trace)"), std::string::npos);
}

TEST(ReportTest, PerConnectionCanBeDisabled) {
  std::vector<trace::PacketRecord> packets;
  for (int i = 0; i < 100; ++i) {
    trace::PacketRecord r;
    r.timestamp = sim::SimTime{static_cast<std::int64_t>(i) * 10'000'000};
    r.bytes = 100;
    r.src = 0;
    r.dst = 1;
    packets.push_back(r);
  }
  core::ReportOptions options;
  options.per_connection = false;
  const std::string report = core::report_string(packets, "agg", options);
  EXPECT_EQ(report.find("-- connection"), std::string::npos);
}

}  // namespace
}  // namespace fxtraf
