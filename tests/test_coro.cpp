// Unit tests for the coroutine process layer: Co, spawn/Process, delay,
// CoEvent, CoQueue, CoBarrier.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "simcore/coro.hpp"

namespace fxtraf::sim {
namespace {

Co<void> sleeper(Simulator& s, Duration d, int id, std::vector<int>& log) {
  co_await delay(s, d);
  log.push_back(id);
}

TEST(CoroTest, DelaysResumeInTimeOrder) {
  Simulator sim;
  std::vector<int> log;
  auto p1 = spawn(sleeper(sim, millis(30), 3, log));
  auto p2 = spawn(sleeper(sim, millis(10), 1, log));
  auto p3 = spawn(sleeper(sim, millis(20), 2, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(p1.done() && p2.done() && p3.done());
}

Co<int> add_later(Simulator& s, int a, int b) {
  co_await delay(s, millis(1));
  co_return a + b;
}

Co<void> caller(Simulator& s, int& out) {
  out = co_await add_later(s, 2, 3);
}

TEST(CoroTest, NestedCoReturnsValue) {
  Simulator sim;
  int result = 0;
  auto p = spawn(caller(sim, result));
  sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(result, 5);
}

Co<void> thrower(Simulator& s) {
  co_await delay(s, millis(1));
  throw std::runtime_error("boom");
}

TEST(CoroTest, ExceptionsSurfaceThroughProcess) {
  Simulator sim;
  auto p = spawn(thrower(sim));
  sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.rethrow_if_failed(), std::runtime_error);
}

Co<void> outer_thrower(Simulator& s) {
  co_await thrower(s);  // exception propagates across co_await
}

TEST(CoroTest, ExceptionsPropagateAcrossNestedAwait) {
  Simulator sim;
  auto p = spawn(outer_thrower(sim));
  sim.run();
  EXPECT_TRUE(p.failed());
}

Co<void> event_waiter(CoEvent& e, std::vector<int>& log, int id) {
  co_await e.wait();
  log.push_back(id);
}

TEST(CoroTest, EventReleasesAllWaiters) {
  Simulator sim;
  CoEvent event;
  std::vector<int> log;
  auto p1 = spawn(event_waiter(event, log, 1));
  auto p2 = spawn(event_waiter(event, log, 2));
  sim.schedule_at(SimTime{100}, [&] { event.set(sim); });
  sim.run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(p1.done() && p2.done());
}

TEST(CoroTest, EventWaitAfterSetCompletesImmediately) {
  Simulator sim;
  CoEvent event;
  event.set(sim);
  std::vector<int> log;
  auto p = spawn(event_waiter(event, log, 7));
  sim.run();
  EXPECT_EQ(log, std::vector<int>{7});
  EXPECT_TRUE(p.done());
}

Co<void> producer(Simulator& s, CoQueue<int>& q, int n) {
  for (int i = 0; i < n; ++i) {
    co_await delay(s, millis(1));
    q.push(s, i);
  }
}

Co<void> consumer(CoQueue<int>& q, int n, std::vector<int>& out) {
  for (int i = 0; i < n; ++i) out.push_back(co_await q.pop());
}

TEST(CoroTest, QueueTransfersFifo) {
  Simulator sim;
  CoQueue<int> queue;
  std::vector<int> received;
  auto p = spawn(producer(sim, queue, 5));
  auto c = spawn(consumer(queue, 5, received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(p.done() && c.done());
}

TEST(CoroTest, QueueBuffersWhenNoConsumer) {
  Simulator sim;
  CoQueue<int> queue;
  queue.push(sim, 41);
  queue.push(sim, 42);
  EXPECT_EQ(queue.size(), 2u);
  std::vector<int> received;
  auto c = spawn(consumer(queue, 2, received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{41, 42}));
  EXPECT_TRUE(c.done());
}

TEST(CoroTest, QueueServesMultipleConsumersFifo) {
  Simulator sim;
  CoQueue<int> queue;
  std::vector<int> a, b;
  auto c1 = spawn(consumer(queue, 1, a));
  auto c2 = spawn(consumer(queue, 1, b));
  queue.push(sim, 10);
  queue.push(sim, 20);
  sim.run();
  EXPECT_EQ(a, std::vector<int>{10});  // first waiter served first
  EXPECT_EQ(b, std::vector<int>{20});
  EXPECT_TRUE(c1.done() && c2.done());
}

Co<void> barrier_party(Simulator& s, CoBarrier& barrier, Duration arrive,
                       std::vector<double>& release_times) {
  co_await delay(s, arrive);
  co_await barrier.arrive_and_wait(s);
  release_times.push_back(s.now().seconds());
}

TEST(CoroTest, BarrierReleasesTogetherAtLastArrival) {
  Simulator sim;
  CoBarrier barrier(3);
  std::vector<double> releases;
  auto p1 = spawn(barrier_party(sim, barrier, millis(1), releases));
  auto p2 = spawn(barrier_party(sim, barrier, millis(5), releases));
  auto p3 = spawn(barrier_party(sim, barrier, millis(9), releases));
  sim.run();
  ASSERT_EQ(releases.size(), 3u);
  for (double t : releases) EXPECT_DOUBLE_EQ(t, 0.009);
  EXPECT_TRUE(p1.done() && p2.done() && p3.done());
  EXPECT_EQ(barrier.generation(), 1u);
}

TEST(CoroTest, BarrierIsCyclic) {
  Simulator sim;
  CoBarrier barrier(2);
  std::vector<double> releases;
  auto p1 = spawn([](Simulator& s, CoBarrier& b,
                     std::vector<double>& r) -> Co<void> {
    for (int i = 0; i < 3; ++i) {
      co_await delay(s, millis(1));
      co_await b.arrive_and_wait(s);
      r.push_back(s.now().seconds());
    }
  }(sim, barrier, releases));
  auto p2 = spawn([](Simulator& s, CoBarrier& b) -> Co<void> {
    for (int i = 0; i < 3; ++i) {
      co_await delay(s, millis(2));
      co_await b.arrive_and_wait(s);
    }
  }(sim, barrier));
  sim.run();
  EXPECT_EQ(releases.size(), 3u);
  EXPECT_EQ(barrier.generation(), 3u);
  EXPECT_TRUE(p1.done() && p2.done());
}

TEST(CoroTest, UnfinishedProcessReportsNotDone) {
  Simulator sim;
  CoQueue<int> queue;  // nobody ever pushes
  std::vector<int> out;
  auto c = spawn(consumer(queue, 1, out));
  sim.run();  // queue drains immediately: consumer is stuck
  EXPECT_FALSE(c.done());  // this is how run_program detects deadlock
}

}  // namespace
}  // namespace fxtraf::sim
