// Tests for the third analysis wave: burst-train detection, baseline
// traffic generators, Hurst estimation, Welch spectra, and pcap I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "core/baselines.hpp"
#include "core/burst_model.hpp"
#include "core/characterization.hpp"
#include "dsp/welch.hpp"
#include "trace/pcap.hpp"

namespace fxtraf {
namespace {

core::BinnedSeries series_from(std::vector<double> kbps, double dt = 0.01) {
  core::BinnedSeries s;
  s.start = sim::SimTime::zero();
  s.interval_s = dt;
  s.kb_per_s = std::move(kbps);
  return s;
}

TEST(BurstModelTest, DetectsSeparatedBursts) {
  std::vector<double> x(100, 0.0);
  for (int b : {10, 40, 70}) {
    for (int i = 0; i < 5; ++i) x[static_cast<std::size_t>(b + i)] = 1000.0;
  }
  const auto bursts = core::detect_bursts(series_from(x));
  ASSERT_EQ(bursts.size(), 3u);
  for (const auto& burst : bursts) {
    EXPECT_EQ(burst.bins, 5u);
    EXPECT_NEAR(burst.bytes, 5 * 1000.0 * 1024.0 * 0.01, 1e-6);
  }
}

TEST(BurstModelTest, ShortGapsMerge) {
  std::vector<double> x(40, 0.0);
  for (int i = 5; i < 10; ++i) x[static_cast<std::size_t>(i)] = 100.0;
  x[11] = 100.0;  // 1-bin dip inside what should be one burst
  for (int i = 12; i < 15; ++i) x[static_cast<std::size_t>(i)] = 100.0;
  core::BurstDetectionOptions opts;
  opts.merge_gap_bins = 2;
  const auto merged = core::detect_bursts(series_from(x), opts);
  EXPECT_EQ(merged.size(), 1u);
  opts.merge_gap_bins = 0;
  const auto split = core::detect_bursts(series_from(x), opts);
  EXPECT_EQ(split.size(), 2u);
}

TEST(BurstModelTest, SummaryOfRegularTrainHasLowCv) {
  std::vector<double> x(1000, 0.0);
  for (std::size_t b = 0; b < 1000; b += 100) {
    for (std::size_t i = 0; i < 8; ++i) x[b + i] = 500.0;
  }
  const auto summary = core::summarize_bursts(series_from(x));
  EXPECT_EQ(summary.bursts, 10u);
  EXPECT_LT(summary.size_cv, 0.01);
  EXPECT_LT(summary.interval_cv, 0.01);
  EXPECT_NEAR(summary.interval_s.mean, 1.0, 1e-9);
}

TEST(BurstModelTest, EmptyAndFlatSeries) {
  EXPECT_TRUE(core::detect_bursts(series_from({})).empty());
  EXPECT_TRUE(core::detect_bursts(series_from({0, 0, 0})).empty());
  const auto always_on = core::detect_bursts(series_from({5, 5, 5, 5}));
  EXPECT_EQ(always_on.size(), 1u);
}

TEST(BaselinesTest, PoissonRateIsRight) {
  sim::Rng rng(1);
  core::PoissonTrafficConfig config;
  config.packets_per_s = 1000.0;
  const auto t = core::poisson_traffic(100.0, config, rng);
  EXPECT_NEAR(static_cast<double>(t.size()), 100000.0, 2000.0);
  // Interarrival CV ~ 1 for exponential.
  const auto inter = core::interarrival_ms_stats(t);
  EXPECT_NEAR(inter.stddev / inter.mean, 1.0, 0.05);
}

TEST(BaselinesTest, PoissonHasNoSpectralSpike) {
  sim::Rng rng(2);
  const auto t = core::poisson_traffic(120.0, {}, rng);
  const auto c = core::characterize(t);
  // No single bin dominates the spectrum.
  const std::size_t argmax =
      c.spectrum.argmax_in_band(0.05, c.spectrum.nyquist_hz());
  const double share =
      c.spectrum.power[argmax] /
      c.spectrum.band_power(0.05, c.spectrum.nyquist_hz());
  EXPECT_LT(share, 0.02);
}

TEST(BaselinesTest, VbrVideoSpikesAtFrameRate) {
  sim::Rng rng(3);
  core::VbrVideoConfig config;
  const auto t = core::vbr_video_traffic(60.0, config, rng);
  const auto c = core::characterize(t);
  const std::size_t argmax = c.spectrum.argmax_in_band(1.0, 45.0);
  EXPECT_NEAR(c.spectrum.frequency_hz[argmax], 30.0, 0.5);
}

TEST(BaselinesTest, VbrFrameSizesVary) {
  sim::Rng rng(4);
  core::VbrVideoConfig config;
  const auto t = core::vbr_video_traffic(60.0, config, rng);
  // Frame sizes modulate: per-frame byte totals have substantial CV.
  const auto series = core::binned_bandwidth(t, sim::millis(500));
  core::Welford w;
  for (double v : series.kb_per_s) w.add(v);
  const auto s = w.summary();
  EXPECT_GT(s.stddev / s.mean, 0.15);
}

TEST(BaselinesTest, SelfSimilarHasHigherHurstThanPoisson) {
  sim::Rng rng(5);
  const auto poisson = core::poisson_traffic(300.0, {}, rng);
  core::OnOffConfig onoff;
  const auto heavy = core::self_similar_traffic(300.0, onoff, rng);
  const auto hp = core::hurst_rs(
      core::binned_bandwidth(poisson, sim::millis(10)).kb_per_s);
  const auto hh = core::hurst_rs(
      core::binned_bandwidth(heavy, sim::millis(10)).kb_per_s);
  EXPECT_NEAR(hp, 0.55, 0.12);  // short-range dependent
  EXPECT_GT(hh, hp + 0.1);      // long-range dependent
}

TEST(BaselinesTest, HurstOfShortSeriesFallsBack) {
  std::vector<double> tiny(10, 1.0);
  EXPECT_DOUBLE_EQ(core::hurst_rs(tiny), 0.5);
}

TEST(WelchTest, MatchesToneFrequency) {
  const double dt = 0.01;
  std::vector<double> x(20000);
  sim::Rng rng(6);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 50.0 +
           20.0 * std::cos(2.0 * std::numbers::pi * 4.0 * dt *
                           static_cast<double>(i)) +
           5.0 * rng.next_uniform(-1, 1);
  }
  const auto spectrum = dsp::welch(x, dt);
  const std::size_t argmax = spectrum.argmax_in_band(0.5, 49.0);
  EXPECT_NEAR(spectrum.frequency_hz[argmax], 4.0, spectrum.resolution_hz());
}

TEST(WelchTest, AveragingReducesNoiseVariance) {
  const double dt = 0.01;
  sim::Rng rng(7);
  std::vector<double> x(65536);
  for (auto& v : x) v = rng.next_uniform(0, 10);
  const auto raw = dsp::periodogram(x, dt);
  const auto averaged = dsp::welch(x, dt, {.segment_samples = 4096,
                                           .overlap_samples = 2048});
  auto rel_spread = [](const dsp::Spectrum& s) {
    core::Welford w;
    for (std::size_t k = 1; k < s.power.size(); ++k) w.add(s.power[k]);
    const auto sum = w.summary();
    return sum.stddev / sum.mean;
  };
  EXPECT_LT(rel_spread(averaged), 0.6 * rel_spread(raw));
}

TEST(WelchTest, RejectsBadOptions) {
  std::vector<double> x(100, 1.0);
  EXPECT_THROW((void)dsp::welch(x, 0.0), std::invalid_argument);
  EXPECT_THROW((void)dsp::welch(x, 0.01, {.segment_samples = 1}),
               std::invalid_argument);
  EXPECT_THROW((void)dsp::welch(x, 0.01, {.segment_samples = 64,
                                          .overlap_samples = 64}),
               std::invalid_argument);
}

TEST(PcapTest, RoundTripsRecords) {
  std::vector<trace::PacketRecord> packets;
  for (int i = 0; i < 50; ++i) {
    trace::PacketRecord r;
    r.timestamp = sim::SimTime{static_cast<std::int64_t>(i) * 1'000'000 +
                               123'000};
    r.bytes = static_cast<std::uint32_t>(58 + i * 29);
    r.proto = i % 3 == 0 ? net::IpProto::kUdp : net::IpProto::kTcp;
    r.src = static_cast<net::HostId>(i % 4);
    r.dst = static_cast<net::HostId>((i + 1) % 4);
    r.src_port = static_cast<std::uint16_t>(1000 + i);
    r.dst_port = static_cast<std::uint16_t>(2000 + i);
    packets.push_back(r);
  }
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trace::write_pcap(buffer, packets);
  const auto parsed = trace::read_pcap(buffer);
  ASSERT_EQ(parsed.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    // Timestamps round to microseconds in pcap.
    EXPECT_NEAR(parsed[i].timestamp.seconds(),
                packets[i].timestamp.seconds(), 1e-6);
    EXPECT_EQ(parsed[i].bytes, packets[i].bytes) << i;
    EXPECT_EQ(parsed[i].proto, packets[i].proto) << i;
    EXPECT_EQ(parsed[i].src, packets[i].src) << i;
    EXPECT_EQ(parsed[i].dst, packets[i].dst) << i;
    EXPECT_EQ(parsed[i].src_port, packets[i].src_port) << i;
    EXPECT_EQ(parsed[i].dst_port, packets[i].dst_port) << i;
  }
}

TEST(PcapTest, RejectsGarbage) {
  std::stringstream garbage("this is not a pcap file at all............");
  EXPECT_THROW((void)trace::read_pcap(garbage), std::runtime_error);
}

}  // namespace
}  // namespace fxtraf
