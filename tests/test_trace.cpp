// Tests for trace records, connection extraction, and text round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/record.hpp"
#include "trace/tracefile.hpp"

namespace fxtraf::trace {
namespace {

PacketRecord make(double t, net::HostId src, net::HostId dst,
                  std::uint32_t bytes,
                  net::IpProto proto = net::IpProto::kTcp) {
  PacketRecord r;
  r.timestamp = sim::SimTime{static_cast<std::int64_t>(t * 1e9)};
  r.src = src;
  r.dst = dst;
  r.bytes = bytes;
  r.proto = proto;
  r.src_port = 1000;
  r.dst_port = 2000;
  return r;
}

TEST(RecordTest, TotalsAndSpan) {
  std::vector<PacketRecord> trace{make(1.0, 0, 1, 100), make(2.0, 1, 0, 58),
                                  make(4.5, 0, 1, 1518)};
  EXPECT_EQ(total_bytes(trace), 1676u);
  EXPECT_DOUBLE_EQ(span_of(trace).seconds(), 3.5);
  EXPECT_EQ(span_of(std::vector<PacketRecord>{}).ns(), 0);
  EXPECT_EQ(span_of(std::vector<PacketRecord>{make(1, 0, 1, 9)}).ns(), 0);
}

TEST(RecordTest, ConnectionIsSimplexMachinePair) {
  std::vector<PacketRecord> trace{
      make(1.0, 0, 1, 100),                       // data 0->1
      make(1.1, 1, 0, 58),                        // ack 1->0 (reverse)
      make(1.2, 0, 1, 80, net::IpProto::kUdp),    // daemon udp 0->1
      make(1.3, 2, 1, 500),                       // other source
      make(1.4, 0, 2, 500),                       // other destination
  };
  const auto conn = connection(trace, 0, 1);
  ASSERT_EQ(conn.size(), 2u);  // data + daemon udp, not the reverse ack
  EXPECT_EQ(conn[0].bytes, 100u);
  EXPECT_EQ(conn[1].proto, net::IpProto::kUdp);
  const auto reverse = connection(trace, 1, 0);
  ASSERT_EQ(reverse.size(), 1u);
  EXPECT_EQ(reverse[0].bytes, 58u);
}

TEST(RecordTest, ProtocolAndTimeSliceFilters) {
  std::vector<PacketRecord> trace{
      make(1.0, 0, 1, 100),
      make(2.0, 0, 1, 80, net::IpProto::kUdp),
      make(3.0, 0, 1, 90),
  };
  EXPECT_EQ(by_protocol(trace, net::IpProto::kUdp).size(), 1u);
  EXPECT_EQ(by_protocol(trace, net::IpProto::kTcp).size(), 2u);
  const auto slice = time_slice(trace, sim::SimTime{static_cast<std::int64_t>(1.5e9)},
                                sim::SimTime{static_cast<std::int64_t>(3e9)});
  ASSERT_EQ(slice.size(), 1u);  // [1.5, 3.0) excludes the 3.0 packet
  EXPECT_EQ(slice[0].proto, net::IpProto::kUdp);
}

TEST(TraceFileTest, RoundTripsExactly) {
  std::vector<PacketRecord> trace{
      make(0.000001, 0, 1, 58),
      make(1.25, 3, 2, 1518),
      make(100.999999999, 2, 3, 558, net::IpProto::kUdp),
  };
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto parsed = read_trace(buffer);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].timestamp, trace[i].timestamp) << i;
    EXPECT_EQ(parsed[i].bytes, trace[i].bytes) << i;
    EXPECT_EQ(parsed[i].proto, trace[i].proto) << i;
    EXPECT_EQ(parsed[i].src, trace[i].src) << i;
    EXPECT_EQ(parsed[i].dst, trace[i].dst) << i;
  }
}

TEST(TraceFileTest, SkipsCommentsAndRejectsGarbage) {
  std::stringstream good("# header comment\n0.5 tcp 0:1 > 1:2 len 100\n");
  EXPECT_EQ(read_trace(good).size(), 1u);
  std::stringstream bad("this is not a trace line\n");
  EXPECT_THROW(read_trace(bad), std::runtime_error);
}

TEST(TraceFileTest, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace fxtraf::trace
