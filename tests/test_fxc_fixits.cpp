// Fix-it round-trip: every machine-applicable edit the safety checkers
// attach must actually repair the program.  For each seeded mutant we
// apply the edits carried by its expected diagnostic, re-parse, re-run
// sema, and require (a) the original rule is gone and (b) no new rule
// appeared that the clean base did not have.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "apps/source_registry.hpp"
#include "fxc/parser.hpp"
#include "fxc/sema/passes.hpp"

namespace fxtraf::fxc {
namespace {

std::set<std::string> rules_of(const DiagnosticSink& sink) {
  std::set<std::string> rules;
  for (const Diagnostic& d : sink.diagnostics()) rules.insert(d.rule);
  return rules;
}

DiagnosticSink analyze(const std::string& source, const std::string& label) {
  DiagnosticSink sink;
  const auto program = parse_source(source, sink);
  EXPECT_TRUE(program.has_value())
      << label << " failed to parse:\n"
      << sink.render_all();
  if (program) run_sema(*program, sink);
  return sink;
}

TEST(FixItRoundTripTest, EveryMutantFixItRepairsTheProgram) {
  for (const apps::MutantKernel& mutant : apps::mutant_kernels()) {
    const DiagnosticSink before = analyze(mutant.source, mutant.name);
    const Diagnostic* hit = before.find(mutant.expected_rule);
    ASSERT_NE(hit, nullptr) << mutant.name << ":\n" << before.render_all();
    ASSERT_FALSE(hit->edits.empty())
        << mutant.name << ": diagnostic has no machine-applicable edits";

    const std::string repaired = apply_edits(mutant.source, hit->edits);
    ASSERT_NE(repaired, mutant.source) << mutant.name;
    const DiagnosticSink after = analyze(repaired, mutant.name + " (fixed)");

    EXPECT_EQ(after.find(mutant.expected_rule), nullptr)
        << mutant.name << ": rule survived its own fix-it.\nrepaired:\n"
        << repaired << "\ndiagnostics:\n"
        << after.render_all();
    for (const std::string& rule : rules_of(after)) {
      EXPECT_TRUE(rules_of(before).count(rule))
          << mutant.name << ": fix-it introduced new rule " << rule
          << "\nrepaired:\n"
          << repaired << "\ndiagnostics:\n"
          << after.render_all();
    }
  }
}

TEST(FixItRoundTripTest, RepairedMutantsHaveNoErrors) {
  // Stronger than rule-disappearance: after applying ALL error fix-its
  // (bottom-up, as apply_edits guarantees), the program passes sema.
  for (const apps::MutantKernel& mutant : apps::mutant_kernels()) {
    const DiagnosticSink before = analyze(mutant.source, mutant.name);
    std::vector<FixItEdit> edits;
    for (const Diagnostic& d : before.diagnostics()) {
      if (d.severity == Severity::kError) {
        edits.insert(edits.end(), d.edits.begin(), d.edits.end());
      }
    }
    ASSERT_FALSE(edits.empty()) << mutant.name;
    const std::string repaired = apply_edits(mutant.source, edits);
    const DiagnosticSink after = analyze(repaired, mutant.name + " (fixed)");
    EXPECT_FALSE(after.has_errors())
        << mutant.name << "\nrepaired:\n"
        << repaired << "\ndiagnostics:\n"
        << after.render_all();
  }
}

TEST(FixItRoundTripTest, ApplyEditsHandlesEachKind) {
  const std::string source = "line one\nline two\nline three\n";
  EXPECT_EQ(apply_edits(source, {{FixItEdit::Kind::kReplaceLine, 2, "TWO"}}),
            "line one\nTWO\nline three\n");
  EXPECT_EQ(apply_edits(source, {{FixItEdit::Kind::kDeleteLine, 2, ""}}),
            "line one\nline three\n");
  EXPECT_EQ(apply_edits(source, {{FixItEdit::Kind::kInsertAfter, 2, "mid"}}),
            "line one\nline two\nmid\nline three\n");
  // Bottom-up application keeps earlier line numbers valid.
  EXPECT_EQ(apply_edits(source, {{FixItEdit::Kind::kDeleteLine, 1, ""},
                                 {FixItEdit::Kind::kReplaceLine, 3, "III"}}),
            "line two\nIII\n");
}

}  // namespace
}  // namespace fxtraf::fxc
