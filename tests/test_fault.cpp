// Fault-injection subsystem tests: seed-stream determinism, plan
// validation, conservation auditing under injected loss, daemon
// crash/restart recovery, the watchdog's livelock diagnosis, and the
// issue's acceptance campaign (six kernels under BER + a daemon crash,
// zero hung trials, serial == parallel digests).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "apps/trial.hpp"
#include "pvm/daemon.hpp"
#include "campaign/engine.hpp"
#include "campaign/seed.hpp"
#include "fault/plan.hpp"
#include "trace/digest.hpp"

namespace fxtraf {
namespace {

apps::TrialScenario small_scenario(const char* kernel, std::uint64_t seed) {
  apps::TrialScenario scenario;
  scenario.kernel = kernel;
  scenario.scale = 0.05;
  scenario.seed = seed;
  scenario.testbed.host.deschedule_probability = 0.01;
  return scenario;
}

TEST(FaultPlanTest, StreamSeedIsStatelessAndDecorrelated) {
  // Pure function of its inputs: no hidden RNG state anywhere.
  static_assert(fault::stream_seed(1, 0, fault::kBerStream) ==
                fault::stream_seed(1, 0, fault::kBerStream));
  EXPECT_EQ(fault::stream_seed(42, 7, 1), fault::stream_seed(42, 7, 1));
  EXPECT_NE(fault::stream_seed(42, 7, 1), fault::stream_seed(42, 7, 2));
  EXPECT_NE(fault::stream_seed(42, 7, 1), fault::stream_seed(42, 8, 1));
  EXPECT_NE(fault::stream_seed(42, 7, 1), fault::stream_seed(43, 7, 1));
}

TEST(FaultPlanTest, DefaultPlanIsInactive) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.watchdog_s = 10.0;  // a watchdog alone schedules no faults
  EXPECT_FALSE(plan.active());
  plan.frame_ber = 1e-6;
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlanTest, InvalidPlansAreRejectedAtTrialConstruction) {
  auto scenario = small_scenario("seq", 1);
  scenario.faults.host_faults.push_back({/*host=*/99, 0.1, 0.1, 0.0, false});
  EXPECT_THROW(apps::Trial trial(scenario), std::invalid_argument);

  auto overlap = small_scenario("seq", 1);
  overlap.faults.host_faults.push_back({0, 0.1, 0.5, 0.0, false});
  overlap.faults.host_faults.push_back({0, 0.3, 0.5, 0.0, false});
  EXPECT_THROW(apps::Trial trial(overlap), std::invalid_argument);

  auto bad_ber = small_scenario("seq", 1);
  bad_ber.faults.frame_ber = 1.5;
  EXPECT_THROW(apps::Trial trial(bad_ber), std::invalid_argument);

  auto unsorted = small_scenario("seq", 1);
  unsorted.faults.corrupt_frames = {9, 3};
  EXPECT_THROW(apps::Trial trial(unsorted), std::invalid_argument);
}

TEST(FaultAuditTest, CleanTrialPassesConservationAudit) {
  auto run = apps::run_trial(small_scenario("sor", 11));
  EXPECT_TRUE(run.audit.ok) << run.audit.summary();
  EXPECT_GT(run.audit.frames_enqueued, 0u);
  EXPECT_EQ(run.audit.drops_ber, 0u);
  EXPECT_EQ(run.audit.drops_fcs, 0u);
  EXPECT_EQ(run.audit.collision_drops_by_station.size(), 4u);
}

TEST(FaultAuditTest, ForcedFcsCorruptionIsCountedAndConserved) {
  auto scenario = small_scenario("2dfft", 5);
  scenario.faults.corrupt_every_nth = 50;
  // finish() throws on any conservation violation, so a returned run is
  // itself the audit-pass assertion.
  auto run = apps::run_trial(scenario);
  EXPECT_TRUE(run.audit.ok) << run.audit.summary();
  EXPECT_GT(run.audit.drops_fcs, 0u);
  // Forced corruption forces recovery work somewhere in the stack.
  EXPECT_GT(run.audit.tcp_retransmissions + run.audit.daemon_retransmissions,
            0u);
}

TEST(FaultAuditTest, BerLossIsDeterministicPerSeedAndSalt) {
  auto scenario = small_scenario("2dfft", 77);
  scenario.faults.frame_ber = 1e-5;
  const auto first = apps::run_trial(scenario);
  const auto second = apps::run_trial(scenario);
  EXPECT_GT(first.audit.drops_ber, 0u);
  EXPECT_EQ(first.audit.drops_ber, second.audit.drops_ber);
  EXPECT_EQ(trace::digest_of(first.packets), trace::digest_of(second.packets));

  // A different salt draws an unrelated BER stream from the same seed.
  auto salted = scenario;
  salted.faults.salt = 1;
  const auto third = apps::run_trial(salted);
  EXPECT_NE(trace::digest_of(first.packets).fnv1a,
            trace::digest_of(third.packets).fnv1a);
}

TEST(FaultRecoveryTest, DaemonCrashAndRestartRecovers) {
  auto scenario = small_scenario("hist", 21);
  scenario.faults.daemon_outages.push_back({/*host=*/1, 0.05, 0.4});
  apps::Trial trial(scenario);
  const auto run = trial.finish();
  EXPECT_TRUE(run.audit.ok) << run.audit.summary();
  EXPECT_EQ(trial.testbed().vm().daemon_of(1).stats().outages, 1u);
  EXPECT_FALSE(trial.testbed().vm().daemon_of(1).down());
}

TEST(FaultRecoveryTest, WatchdogDiagnosesHaltedHost) {
  // Halt host 1's CPU forever (network stays up, so TCP keeps ACKing and
  // never aborts): without the watchdog the keepalive traffic would spin
  // the simulation forever.  The watchdog must stop it and name the
  // unfinished ranks.
  auto scenario = small_scenario("sor", 3);
  scenario.faults.host_faults.push_back(
      {/*host=*/1, 0.02, 1e9, /*cpu_factor=*/0.0, /*network_down=*/false});
  scenario.faults.watchdog_s = 5.0;
  apps::Trial trial(scenario);
  try {
    (void)trial.finish();
    FAIL() << "halted host must not finish";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos)
        << e.what();
  }
  EXPECT_LE(trial.simulator().now().seconds(), 5.1);
}

TEST(FaultCampaignTest, SixKernelsUnderBerAndDaemonCrashNeverHang) {
  // The issue's acceptance criterion: all six kernels at BER 1e-5 with a
  // daemon crash/restart either complete with a passing audit or are
  // reported failed with a diagnosis — and a parallel campaign replays
  // bitwise identically to the serial baseline.
  fault::FaultPlan plan;
  plan.frame_ber = 1e-5;
  plan.daemon_outages.push_back({/*host=*/1, 0.2, 0.3});
  plan.watchdog_s = 300.0;

  std::vector<campaign::TrialSpec> specs;
  for (const char* kernel :
       {"sor", "2dfft", "t2dfft", "seq", "hist", "airshed"}) {
    campaign::TrialSpec spec;
    spec.scenario = small_scenario(kernel, 0);
    spec.scenario.seed = campaign::split_seed(0xabcdef, specs.size());
    spec.scenario.faults = plan;
    spec.label = kernel;
    specs.push_back(std::move(spec));
  }

  campaign::CampaignOptions serial;
  serial.threads = 1;
  serial.characterize = false;
  campaign::CampaignOptions parallel = serial;
  parallel.threads = 4;

  const auto a = campaign::run_campaign(specs, serial);
  const auto b = campaign::run_campaign(specs, parallel);
  ASSERT_EQ(a.trials.size(), 6u);
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    if (a.trials[i].ok) {
      // finish() already threw if the audit failed, so ok == audited.
      EXPECT_GT(a.trials[i].metric("packets"), 0.0) << a.trials[i].label;
    } else {
      // A failed trial must carry its abort/watchdog diagnosis.
      EXPECT_FALSE(a.trials[i].error.empty()) << a.trials[i].label;
    }
    EXPECT_EQ(a.trials[i].ok, b.trials[i].ok) << a.trials[i].label;
    EXPECT_EQ(a.trials[i].digest, b.trials[i].digest) << a.trials[i].label;
  }
  // BER 1e-5 kills ~11% of full-size frames; the transports must still
  // pull most kernels through — a campaign failing everything regressed.
  EXPECT_GE(a.trials.size() - a.failures, 4u);
  EXPECT_GT(a.metric("drops_ber").stats.mean, 0.0);
  EXPECT_GT(a.metric("tcp_retransmissions").stats.mean +
                a.metric("daemon_retransmissions").stats.mean,
            0.0);
}

}  // namespace
}  // namespace fxtraf
