// Tests for the Fx source dialect lexer and parser, including complete
// source programs for the paper's kernels compiled and executed.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "fx/runtime.hpp"
#include "fxc/lexer.hpp"
#include "fxc/lower.hpp"
#include "fxc/parser.hpp"

namespace fxtraf::fxc {
namespace {

TEST(LexerTest, TokenKindsAndPositions) {
  const auto tokens = lex("array U real4 (512, 512)\n! comment\non 0..4");
  ASSERT_GE(tokens.size(), 11u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "array");
  EXPECT_EQ(tokens[1].text, "u");  // identifiers fold to lowercase
  EXPECT_EQ(tokens[3].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[4].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[4].number, 512.0);
  EXPECT_EQ(tokens[5].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[8].text, "on");
  EXPECT_EQ(tokens[8].line, 3);
  EXPECT_EQ(tokens[10].kind, TokenKind::kDotDot);
}

TEST(LexerTest, NumberUnits) {
  const auto tokens = lex("240ms 5e6 1.5s 32k 10us 2m");
  EXPECT_DOUBLE_EQ(tokens[0].number, 0.240);
  EXPECT_DOUBLE_EQ(tokens[1].number, 5e6);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1.5);
  EXPECT_DOUBLE_EQ(tokens[3].number, 32000.0);
  EXPECT_DOUBLE_EQ(tokens[4].number, 1e-5);
  EXPECT_DOUBLE_EQ(tokens[5].number, 2e6);
}

TEST(LexerTest, RangeDoesNotEatDecimalPoint) {
  const auto tokens = lex("0..4 1.5");
  EXPECT_DOUBLE_EQ(tokens[0].number, 0.0);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDotDot);
  EXPECT_DOUBLE_EQ(tokens[2].number, 4.0);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1.5);
}

TEST(LexerTest, BadInputReportsPosition) {
  try {
    (void)lex("array u\n  @bad");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
  EXPECT_THROW((void)lex("10zz"), std::runtime_error);
}

constexpr const char* kSorSource = R"(
! SOR: successive overrelaxation, the neighbor-pattern kernel.
program sor
processors 4
iterations 8

array u real4 (512, 512) distribute (block, *)

stencil u offsets (1, 1) flops 5.0
)";

TEST(ParserTest, ParsesSorKernel) {
  const SourceProgram program = parse_source(kSorSource);
  EXPECT_EQ(program.name, "sor");
  EXPECT_EQ(program.processors, 4);
  EXPECT_EQ(program.iterations, 8);
  const ArrayDecl& u = program.array("u");
  EXPECT_EQ(u.extents, (std::vector<std::size_t>{512, 512}));
  EXPECT_EQ(u.type, ElemType::kReal4);
  EXPECT_EQ(u.distribution.block_dim(), 0);
  ASSERT_EQ(program.body.size(), 1u);
  const auto& stencil = std::get<StencilAssign>(program.body[0]);
  EXPECT_EQ(stencil.max_offsets, (std::vector<int>{1, 1}));
  EXPECT_DOUBLE_EQ(stencil.flops_per_point, 5.0);
}

constexpr const char* kFftSource = R"(
program fft2d
processors 4
iterations 5
array a real8 (256, 256) distribute (block, *)
local 2e6
redistribute a (*, block)
local 2e6
redistribute a (block, *)
)";

TEST(ParserTest, ParsesAndCompilesFft) {
  const CompiledProgram compiled = compile(parse_source(kFftSource));
  ASSERT_EQ(compiled.phases.size(), 4u);
  EXPECT_EQ(compiled.phases[1].analysis.shape, CommShape::kAllToAll);
  EXPECT_EQ(compiled.phases[3].analysis.shape, CommShape::kAllToAll);
  EXPECT_EQ(compiled.bytes_per_iteration(), 2u * 12u * 64u * 64u * 8u);
}

constexpr const char* kTaskParallelSource = R"(
program t2dfft
processors 4
iterations 3
array a real8 (128, 128) distribute (block, *) on 0..2
redistribute a (*, block) on 2..4
)";

TEST(ParserTest, ParsesTaskParallelPlacement) {
  const SourceProgram program = parse_source(kTaskParallelSource);
  EXPECT_EQ(program.array("a").processors.lo, 0u);
  EXPECT_EQ(program.array("a").processors.hi, 2u);
  const auto analysis = analyze(program, program.body[0]);
  EXPECT_EQ(analysis.shape, CommShape::kPartition);
}

constexpr const char* kSeqSource = R"(
program seq
processors 4
iterations 2
array a real4 (8, 8) distribute (block, *)
read a element 4 row_io 20ms
)";

TEST(ParserTest, ParsesSequentialRead) {
  const SourceProgram program = parse_source(kSeqSource);
  const auto& read = std::get<SequentialRead>(program.body[0]);
  EXPECT_EQ(read.element_message_bytes, 4u);
  EXPECT_EQ(read.io_time_per_row, sim::millis(20));
}

constexpr const char* kHistSource = R"(
program hist
processors 4
iterations 4
local 2e6
reduce bytes 2048 flops 1e6
broadcast bytes 2048 root 0
)";

TEST(ParserTest, ParsesReduceAndBroadcast) {
  const SourceProgram program = parse_source(kHistSource);
  ASSERT_EQ(program.body.size(), 3u);
  EXPECT_EQ(std::get<Reduction>(program.body[1]).vector_bytes, 2048u);
  EXPECT_EQ(std::get<BroadcastStmt>(program.body[2]).root, 0);
}

TEST(ParserTest, SourceProgramRunsEndToEnd) {
  const CompiledProgram compiled = compile(parse_source(kFftSource));
  sim::Simulator simulator(55);
  apps::TestbedConfig config;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), compiled.executable);
  EXPECT_GT(testbed.capture().size(), 500u);
}

/// Rule ID and position of the ParseError a source snippet raises.
Diagnostic failure_of(const char* source) {
  try {
    (void)parse_source(source);
  } catch (const ParseError& e) {
    return e.diagnostic();
  }
  ADD_FAILURE() << "expected a ParseError for:\n" << source;
  return {};
}

TEST(ParserDiagnosticsTest, ErrorsCarryStableRuleIds) {
  EXPECT_EQ(failure_of("program p processors 4\nfrobnicate").rule,
            kRuleUnknownStatement);
  EXPECT_EQ(failure_of("program p processors 4\n"
                       "stencil u offsets (1, 1)")
                .rule,
            kRuleUnknownArray);
  EXPECT_EQ(failure_of("program p processors 4\n"
                       "array a real8 (8, 8) distribute (block, block)")
                .rule,
            kRuleBadDistribution);
  EXPECT_EQ(failure_of("program p processors 4\n"
                       "array a quux (8, 8) distribute (block, *)")
                .rule,
            kRuleBadDeclaration);
  EXPECT_EQ(failure_of("program p processors 4\n"
                       "array a real8 (8, 8) distribute (block, *) on 2..9")
                .rule,
            kRuleBadProcessorRange);
  EXPECT_EQ(failure_of("program p processors 4\n"
                       "array a real8 (8, 8) distribute (block, *)\n"
                       "array a real8 (8, 8) distribute (block, *)")
                .rule,
            kRuleDuplicateArray);
  EXPECT_EQ(failure_of("program p processors 4\n"
                       "array a real8 (8, 8) distribute (block, *)\n"
                       "stencil a offsets (1)")
                .rule,
            kRuleOffsetRank);
  EXPECT_EQ(failure_of("program p processors 4\nbroadcast root 9").rule,
            kRuleBadRoot);
  EXPECT_EQ(failure_of("program p\nprocessors oops").rule, kRuleSyntax);
}

TEST(ParserDiagnosticsTest, ErrorsCarrySourcePositions) {
  const Diagnostic unknown = failure_of(
      "program p\nprocessors 4\n  frobnicate");
  EXPECT_EQ(unknown.severity, Severity::kError);
  EXPECT_EQ(unknown.pos.line, 3);
  EXPECT_EQ(unknown.pos.column, 3);

  const Diagnostic dup = failure_of(
      "program p processors 4\n"
      "array a real8 (8, 8) distribute (block, *)\n"
      "array a real8 (8, 8) distribute (block, *)");
  EXPECT_EQ(dup.pos.line, 3);

  // The legacy what() text still carries line:column for old callers.
  try {
    (void)parse_source("program p\nprocessors 4\nfrobnicate");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos);
  }
}

TEST(ParserDiagnosticsTest, StatementsRecordPositions) {
  const SourceProgram program = parse_source(
      "program p\nprocessors 4\n"
      "array a real8 (8, 8) distribute (block, *)\n"
      "local 1e6\n"
      "redistribute a (*, block)\n");
  EXPECT_EQ(program.array("a").pos.line, 3);
  ASSERT_EQ(program.body.size(), 2u);
  EXPECT_EQ(statement_pos(program.body[0]).line, 4);
  EXPECT_EQ(statement_pos(program.body[1]).line, 5);
}

TEST(ParserTest, SemanticErrorsCarryPositions) {
  EXPECT_THROW((void)parse_source("processors 4"), std::runtime_error);
  EXPECT_THROW((void)parse_source("program p processors 4 stencil u "
                                  "offsets (1, 1)"),
               std::runtime_error);  // unknown array
  EXPECT_THROW((void)parse_source("program p processors 4 broadcast root 9"),
               std::runtime_error);  // root out of range
  EXPECT_THROW(
      (void)parse_source("program p processors 4\n"
                         "array a real8 (8, 8) distribute (block, block)"),
      std::runtime_error);  // two BLOCK dims
  EXPECT_THROW(
      (void)parse_source("program p processors 4\n"
                         "array a real8 (8, 8) distribute (block, *) on 2..9"),
      std::runtime_error);  // range beyond P
  EXPECT_THROW(
      (void)parse_source("program p processors 4\n"
                         "array a real8 (8, 8) distribute (block, *)\n"
                         "array a real8 (8, 8) distribute (block, *)"),
      std::runtime_error);  // duplicate array
  EXPECT_THROW(
      (void)parse_source("program p processors 4\n"
                         "array a real8 (8, 8) distribute (block, *)\n"
                         "stencil a offsets (1)"),
      std::runtime_error);  // offset rank mismatch
}

}  // namespace
}  // namespace fxtraf::fxc
