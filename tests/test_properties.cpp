// Parameterized property suites: invariants that must hold across sweeps
// of station counts, transfer sizes, loss rates, processor counts, and
// random seeds.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "apps/fft2d.hpp"
#include "apps/testbed.hpp"
#include "core/bandwidth.hpp"
#include "core/packet_stats.hpp"
#include "ethernet/nic.hpp"
#include "ethernet/segment.hpp"
#include "fx/runtime.hpp"
#include "fxc/lower.hpp"
#include "net/stack.hpp"
#include "pvm/task.hpp"
#include "simcore/coro.hpp"

namespace fxtraf {
namespace {

// ---- Ethernet: conservation under contention ---------------------------

class EthernetContention : public ::testing::TestWithParam<int> {};

TEST_P(EthernetContention, AllFramesDeliveredBytesConserved) {
  const int stations = GetParam();
  sim::Simulator simulator(1000 + static_cast<std::uint64_t>(stations));
  eth::Segment segment(simulator);
  std::vector<std::unique_ptr<eth::Nic>> nics;
  for (int i = 0; i < stations; ++i) {
    nics.push_back(std::make_unique<eth::Nic>(
        simulator, segment, static_cast<net::HostId>(i)));
  }
  std::uint64_t sent_bytes = 0;
  const int frames_each = 20;
  for (auto& nic : nics) {
    for (int f = 0; f < frames_each; ++f) {
      net::IpDatagram d;
      d.src = nic->station();
      d.dst = static_cast<net::HostId>((nic->station() + 1) % stations);
      d.payload_bytes = 200 + 97 * static_cast<std::size_t>(f);
      eth::Frame frame;
      frame.src = d.src;
      frame.dst = d.dst;
      frame.datagram = std::make_shared<const net::IpDatagram>(d);
      sent_bytes += frame.recorded_bytes();
      nic->send(std::move(frame));
    }
  }
  simulator.run();
  std::uint64_t drops = 0;
  std::uint64_t delivered_frames = 0;
  for (auto& nic : nics) {
    drops += nic->stats().excessive_collision_drops;
    delivered_frames += nic->stats().frames_received;
  }
  EXPECT_EQ(delivered_frames + drops,
            static_cast<std::uint64_t>(stations) * frames_each);
  if (drops == 0) {
    EXPECT_EQ(segment.stats().bytes_delivered, sent_bytes);
  }
  EXPECT_LE(segment.utilization(simulator.now()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Stations, EthernetContention,
                         ::testing::Values(2, 3, 4, 6, 9, 16));

// ---- TCP: transfer-size sweep ------------------------------------------

class TcpTransferSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpTransferSweep, ExactDeliveryAndPacketAccounting) {
  const std::size_t bytes = GetParam();
  sim::Simulator simulator(2000 + bytes);
  eth::Segment segment(simulator);
  eth::Nic nic_a(simulator, segment, 0), nic_b(simulator, segment, 1);
  net::Stack stack_a(simulator, nic_a), stack_b(simulator, nic_b);
  std::uint64_t data_payload_on_wire = 0;
  segment.add_tap([&](sim::SimTime, const eth::Frame& f) {
    if (f.datagram->proto == net::IpProto::kTcp) {
      data_payload_on_wire += f.datagram->payload_bytes;
    }
  });

  auto& accept_queue = stack_b.tcp_listen(5000);
  net::TcpConnection& client = stack_a.tcp_connect(1, 5000);
  bool received = false;
  auto writer = sim::spawn(
      [](net::TcpConnection& c, std::size_t n) -> sim::Co<void> {
        co_await c.connect();
        c.send(n);
        co_await c.wait_drained();
      }(client, bytes));
  auto reader = sim::spawn(
      [](net::Stack::AcceptQueue& q, std::size_t n, bool& flag)
          -> sim::Co<void> {
        net::TcpConnection* server = co_await q.pop();
        co_await server->recv(n);
        flag = true;
      }(accept_queue, bytes, received));
  simulator.run();
  EXPECT_TRUE(received);
  EXPECT_TRUE(writer.done() && reader.done());
  // Without loss, wire payload equals the application bytes exactly.
  EXPECT_EQ(data_payload_on_wire, bytes);
  EXPECT_EQ(client.stats().retransmissions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransferSweep,
                         ::testing::Values(1, 100, 1459, 1460, 1461, 2920,
                                           10000, 65536, 200000));

// ---- TCP under random loss ---------------------------------------------

class TcpLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossSweep, DeliversDespitePeriodicFrameLoss) {
  const int drop_every = GetParam();
  sim::Simulator simulator(3000 + static_cast<std::uint64_t>(drop_every));
  eth::Segment segment(simulator);
  eth::Nic nic_a(simulator, segment, 0), nic_b(simulator, segment, 1);
  net::Stack stack_a(simulator, nic_a), stack_b(simulator, nic_b);
  int frames = 0;
  segment.set_fault_injector([&](const eth::Frame& f) {
    return f.datagram->payload_bytes > 0 && ++frames % drop_every == 0;
  });
  auto& accept_queue = stack_b.tcp_listen(5000);
  net::TcpConnection& client = stack_a.tcp_connect(1, 5000);
  const std::size_t bytes = 50000;
  bool received = false;
  auto writer = sim::spawn(
      [](net::TcpConnection& c, std::size_t n) -> sim::Co<void> {
        co_await c.connect();
        c.send(n);
        co_await c.wait_drained();
      }(client, bytes));
  auto reader = sim::spawn(
      [](net::Stack::AcceptQueue& q, std::size_t n, bool& flag)
          -> sim::Co<void> {
        net::TcpConnection* server = co_await q.pop();
        co_await server->recv(n);
        flag = true;
      }(accept_queue, bytes, received));
  simulator.run();
  EXPECT_TRUE(received) << "drop_every=" << drop_every;
  EXPECT_TRUE(writer.done() && reader.done());
  EXPECT_GE(client.stats().retransmissions, 1u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(5, 9, 17, 33));

// ---- Bandwidth estimators: byte conservation across bin widths ---------

class BandwidthBinSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthBinSweep, BinnedSeriesConservesBytes) {
  const double bin_ms = GetParam();
  sim::Rng rng(7);
  std::vector<trace::PacketRecord> packets;
  std::int64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += static_cast<std::int64_t>(rng.next_u64() % 5'000'000);
    trace::PacketRecord r;
    r.timestamp = sim::SimTime{t};
    r.bytes = 58 + static_cast<std::uint32_t>(rng.next_u64() % 1460);
    packets.push_back(r);
  }
  const auto total = static_cast<double>(trace::total_bytes(packets));
  const auto series = core::binned_bandwidth(packets, sim::millis(bin_ms));
  double recovered = 0.0;
  for (double kbps : series.kb_per_s) {
    recovered += kbps * 1024.0 * series.interval_s;
  }
  EXPECT_NEAR(recovered, total, 1e-6 * total) << "bin " << bin_ms << " ms";
}

INSTANTIATE_TEST_SUITE_P(Bins, BandwidthBinSweep,
                         ::testing::Values(1.0, 5.0, 10.0, 50.0, 250.0,
                                           1000.0));

// ---- fxc: analysis matches executed traffic across P -------------------

class CompiledTransposeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompiledTransposeSweep, StaticBytesMatchWire) {
  const int p = GetParam();
  fxc::SourceProgram source;
  source.name = "sweep";
  source.processors = p;
  source.iterations = 2;
  fxc::ArrayDecl a;
  a.name = "a";
  a.extents = {128, 128};
  a.type = fxc::ElemType::kReal8;
  a.distribution.dims = {fxc::DistKind::kBlock, fxc::DistKind::kCollapsed};
  a.processors = fxc::Interval{0, static_cast<std::size_t>(p)};
  source.arrays.emplace("a", a);
  fxc::Distribution cols;
  cols.dims = {fxc::DistKind::kCollapsed, fxc::DistKind::kBlock};
  source.body.emplace_back(
      fxc::Redistribute{"a", cols, fxc::Interval{0, static_cast<std::size_t>(p)}});

  const auto compiled = fxc::compile(source);
  sim::Simulator simulator(4000 + static_cast<std::uint64_t>(p));
  apps::TestbedConfig config;
  config.workstations = p;
  config.pvm.keepalives_enabled = false;
  apps::Testbed testbed(simulator, config);
  testbed.start();
  fx::run_program(testbed.vm(), compiled.executable);

  std::uint64_t payload = 0;
  std::uint64_t messages = 0;
  for (const auto& pkt : testbed.capture().packets()) {
    if (pkt.bytes > 58) payload += pkt.bytes - 58;
  }
  for (int r = 0; r < p; ++r) {
    messages += testbed.vm().task(r).stats().messages_sent;
  }
  const std::uint64_t expected =
      2ull * compiled.bytes_per_iteration() +
      messages * pvm::kMessageHeaderBytes;
  EXPECT_EQ(payload, expected) << "P=" << p;
}

INSTANTIATE_TEST_SUITE_P(Processors, CompiledTransposeSweep,
                         ::testing::Values(2, 4, 8));

// ---- Determinism across subsystems --------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SameSeedSameTrace) {
  auto run_once = [&] {
    sim::Simulator simulator(GetParam());
    apps::TestbedConfig config;
    config.host.deschedule_probability = 0.2;  // exercise the RNG paths
    apps::Testbed testbed(simulator, config);
    testbed.start();
    apps::Fft2dParams params;
    params.n = 128;
    params.iterations = 4;
    params.flops_per_phase = 1e6;
    fx::run_program(testbed.vm(), apps::make_fft2d(params));
    return testbed.capture().packets();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].timestamp, b[i].timestamp) << i;
    ASSERT_EQ(a[i].bytes, b[i].bytes) << i;
    ASSERT_EQ(a[i].src, b[i].src) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 42ull, 31337ull));

}  // namespace
}  // namespace fxtraf
