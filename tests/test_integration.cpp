// Integration tests: run the six Fx programs end to end (scaled down) on
// the simulated testbed and check the traffic properties the paper
// reports for each.
#include <gtest/gtest.h>

#include "apps/airshed.hpp"
#include "apps/fft2d.hpp"
#include "apps/hist.hpp"
#include "apps/seq.hpp"
#include "apps/sor.hpp"
#include "apps/testbed.hpp"
#include <sstream>

#include "apps/tfft2d.hpp"
#include "core/burst_model.hpp"
#include "core/characterization.hpp"
#include "dsp/autocorr.hpp"
#include "dsp/welch.hpp"
#include "fx/runtime.hpp"
#include "trace/pcap.hpp"

namespace fxtraf::apps {
namespace {

struct Experiment {
  sim::Simulator sim;
  Testbed testbed;

  explicit Experiment(TestbedConfig config = default_config(),
                      std::uint64_t seed = 5150)
      : sim(seed), testbed(sim, config) {
    testbed.start();
  }

  static TestbedConfig default_config() {
    TestbedConfig c;
    c.workstations = 4;
    c.pvm.keepalives_enabled = false;
    return c;
  }

  sim::SimTime run(const fx::FxProgram& program) {
    return fx::run_program(testbed.vm(), program);
  }
};

TEST(IntegrationTest, SorRunsAndUsesNeighborPairsOnly) {
  Experiment e;
  SorParams params;
  params.iterations = 6;
  params.flops_per_iteration = 5e6;  // shrink for test speed
  e.run(make_sor(params));
  const auto& packets = e.testbed.capture().packets();
  ASSERT_GT(packets.size(), 50u);
  for (const auto& p : packets) {
    const int gap = std::abs(static_cast<int>(p.src) -
                             static_cast<int>(p.dst));
    EXPECT_EQ(gap, 1) << "SOR traffic must stay on the chain";
  }
}

TEST(IntegrationTest, SorTrafficIsTrimodal) {
  Experiment e;
  SorParams params;
  params.iterations = 10;
  params.flops_per_iteration = 5e6;
  e.run(make_sor(params));
  const auto modes = core::size_modes(e.testbed.capture().view());
  ASSERT_GE(modes.size(), 3u) << "full packets, remainder, ACKs";
}

TEST(IntegrationTest, Fft2dMovesTheWholeMatrixEachIteration) {
  Experiment e;
  Fft2dParams params;
  params.n = 128;
  params.iterations = 3;
  params.flops_per_phase = 2e6;
  e.run(make_fft2d(params));
  // Each iteration: 12 blocks of (128/4)^2*8 = 8192 B + headers.
  std::uint64_t tcp_payload = 0;
  for (const auto& p : e.testbed.capture().packets()) {
    if (p.bytes > 58) tcp_payload += p.bytes - 58;
  }
  const std::uint64_t expected = 3ull * 12ull * 8192ull;
  EXPECT_GT(tcp_payload, expected);
  EXPECT_LT(tcp_payload, expected + 3 * 12 * 256 + 20000);
}

TEST(IntegrationTest, Fft2dIsPeriodicAtItsIterationRate) {
  Experiment e;
  Fft2dParams params;
  params.n = 256;
  params.iterations = 24;
  // ~0.25 s compute per phase (25 MFLOPS hosts) plus transpose.
  params.flops_per_phase = 6.25e6;
  e.run(make_fft2d(params));
  const auto c = core::characterize(e.testbed.capture().view());
  ASSERT_GT(c.peaks.size(), 0u);
  // Iteration period ~0.5s compute + ~0.55s comm: fundamental in
  // [0.5, 1.5] Hz.
  EXPECT_GT(c.fundamental.frequency_hz, 0.4);
  EXPECT_LT(c.fundamental.frequency_hz, 1.6);
  EXPECT_GT(c.fundamental.harmonic_power_fraction, 0.5);
}

TEST(IntegrationTest, Tfft2dFragmentListWidensPacketSizes) {
  auto run_with = [](pvm::AssemblyMode mode) {
    TestbedConfig config = Experiment::default_config();
    config.pvm.assembly = mode;
    Experiment e(config);
    Tfft2dParams params;
    params.n = 256;
    params.iterations = 4;
    params.flops_per_stage = 2e6;
    e.run(make_tfft2d(params));
    std::vector<std::uint32_t> data_sizes;
    for (const auto& p : e.testbed.capture().packets()) {
      if (p.bytes > 58) data_sizes.push_back(p.bytes);
    }
    core::Welford w;
    for (auto s : data_sizes) w.add(s);
    return w.summary();
  };
  const auto frag = run_with(pvm::AssemblyMode::kFragmentList);
  const auto copy = run_with(pvm::AssemblyMode::kCopyLoop);
  // Fragment-list sends non-maximal packets at every pack boundary; the
  // copy loop streams almost entirely full segments (paper section 6.1).
  EXPECT_LT(frag.mean, copy.mean);
}

TEST(IntegrationTest, SeqOnlyRootSendsAndPacketsAreTiny) {
  Experiment e;
  SeqParams params;
  params.n = 8;
  params.iterations = 2;
  params.row_io_time = sim::millis(20);
  e.run(make_seq(params));
  const auto& packets = e.testbed.capture().packets();
  ASSERT_GT(packets.size(), 100u);
  for (const auto& p : packets) {
    if (p.bytes > 58) {
      EXPECT_EQ(p.src, 0) << "only processor 0 sends data";
    }
    EXPECT_LE(p.bytes, 130u) << "SEQ packets are all small";
  }
}

TEST(IntegrationTest, HistTreePlusBroadcastCompletes) {
  Experiment e;
  HistParams params;
  params.iterations = 8;
  params.flops_per_iteration = 2e6;
  e.run(make_hist(params));
  // Tree edges up: (1,0),(3,2),(2,0); broadcast down from 0.
  std::set<std::pair<int, int>> data_pairs;
  for (const auto& p : e.testbed.capture().packets()) {
    if (p.bytes > 58) data_pairs.emplace(p.src, p.dst);
  }
  const std::set<std::pair<int, int>> expected{
      {1, 0}, {3, 2}, {2, 0}, {0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(data_pairs, expected);
}

TEST(IntegrationTest, AirshedHasHourAndStepStructure) {
  Experiment e;
  AirshedParams params;
  params.hours = 2;
  params.steps_per_hour = 2;
  params.preprocess_flops = 50e6;   // 2 s
  params.horizontal_flops = 12.5e6;  // 0.5 s
  params.chemistry_flops = 25e6;     // 1 s
  params.transpose_chunks = 2;
  params.chunk_flops = 2.5e6;  // 0.1 s
  e.run(make_airshed(params));
  const auto& packets = e.testbed.capture().packets();
  ASSERT_GT(packets.size(), 100u);
  // The preprocessing phases produce long silences: max interarrival far
  // exceeds the average (paper: ratio is "quite high").
  const auto inter = core::interarrival_ms_stats(packets);
  EXPECT_GT(inter.max / inter.mean, 20.0);
}

TEST(IntegrationTest, AutocorrelationAgreesWithSpectrum) {
  // Two independent period estimators — spectral fundamental and first
  // autocorrelation peak — must agree on the burst comb.
  Experiment e;
  HistParams params;
  params.iterations = 60;
  e.run(make_hist(params));
  const auto series = core::binned_bandwidth(e.testbed.capture().view(),
                                             sim::millis(10));
  const auto c = core::characterize(e.testbed.capture().view());
  const auto period = dsp::estimate_period(series.kb_per_s, 400);
  ASSERT_GT(period.lag_samples, 0u);
  const double autocorr_hz =
      1.0 / (static_cast<double>(period.lag_samples) * series.interval_s);
  EXPECT_NEAR(autocorr_hz, c.fundamental.frequency_hz,
              0.15 * c.fundamental.frequency_hz);
}

TEST(IntegrationTest, WelchAndPeriodogramAgreeOnTheFundamental) {
  Experiment e;
  SeqParams params;  // the most periodic kernel
  e.run(make_seq(params));
  const auto series = core::binned_bandwidth(e.testbed.capture().view(),
                                             sim::millis(10));
  const auto raw = dsp::periodogram(series.kb_per_s, series.interval_s);
  const auto averaged = dsp::welch(series.kb_per_s, series.interval_s,
                                   {.segment_samples = 1024,
                                    .overlap_samples = 512});
  const auto raw_peak = raw.frequency_hz[raw.argmax_in_band(1.0, 45.0)];
  const auto welch_peak =
      averaged.frequency_hz[averaged.argmax_in_band(1.0, 45.0)];
  EXPECT_NEAR(raw_peak, welch_peak, averaged.resolution_hz());
  EXPECT_NEAR(raw_peak, 4.1, 0.4);
}

TEST(IntegrationTest, PcapRoundTripPreservesCharacterization) {
  Experiment e;
  HistParams params;
  params.iterations = 40;
  e.run(make_hist(params));
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trace::write_pcap(buffer, e.testbed.capture().view());
  const auto reloaded = trace::read_pcap(buffer);
  const auto before = core::characterize(e.testbed.capture().view());
  const auto after = core::characterize(reloaded);
  EXPECT_EQ(reloaded.size(), e.testbed.capture().size());
  EXPECT_NEAR(after.avg_bandwidth_kbs, before.avg_bandwidth_kbs, 0.01);
  EXPECT_NEAR(after.fundamental.frequency_hz,
              before.fundamental.frequency_hz, 0.05);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Experiment e;
    Fft2dParams params;
    params.n = 128;
    params.iterations = 3;
    params.flops_per_phase = 2e6;
    e.run(make_fft2d(params));
    return e.testbed.capture().packets();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp) << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
  }
}

TEST(IntegrationTest, DeschedulesMergeBursts) {
  // Paper Figure 6 (2DFFT): "the third and fourth burst are short
  // because they are, in fact, a single communication phase where some
  // processor descheduled the program" — heavy deschedule injection must
  // reduce the distinct-burst count below the iteration count.
  auto burst_count = [](double prob) {
    TestbedConfig config = Experiment::default_config();
    config.host.deschedule_probability = prob;
    config.host.mean_deschedule = sim::millis(400);
    Experiment e(config, /*seed=*/777);
    Fft2dParams params;
    params.n = 256;
    params.iterations = 16;
    params.flops_per_phase = 4e6;
    e.run(make_fft2d(params));
    const auto series = core::binned_bandwidth(e.testbed.capture().view(),
                                               sim::millis(10));
    return core::detect_bursts(series, {.threshold_fraction = 0.05,
                                        .merge_gap_bins = 8,
                                        .min_bins = 2})
        .size();
  };
  const auto clean = burst_count(0.0);
  const auto noisy = burst_count(0.9);
  EXPECT_EQ(clean, 16u);
  // A deschedule mid-phase splits/stalls a phase: bursts merge or split
  // irregularly, so the clean one-burst-per-iteration structure is lost.
  EXPECT_NE(noisy, clean);
}

TEST(IntegrationTest, DescheduleInjectionStretchesPhases) {
  auto total_time = [](double prob) {
    TestbedConfig config = Experiment::default_config();
    config.host.deschedule_probability = prob;
    config.host.mean_deschedule = sim::millis(200);
    Experiment e(config);
    Fft2dParams params;
    params.n = 128;
    params.iterations = 10;
    params.flops_per_phase = 2e6;
    return e.run(make_fft2d(params)).seconds();
  };
  EXPECT_GT(total_time(0.5), total_time(0.0));
}

}  // namespace
}  // namespace fxtraf::apps
