// Parameterized sweep: every kernel completes at P = 2, 4, 8 with the
// expected traffic footprint (no deadlocks, correct participants, data
// proportional to the kernel's asymptotic message volume).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "apps/airshed.hpp"
#include "apps/fft2d.hpp"
#include "apps/hist.hpp"
#include "apps/seq.hpp"
#include "apps/sor.hpp"
#include "apps/testbed.hpp"
#include "apps/tfft2d.hpp"
#include "fx/runtime.hpp"

namespace fxtraf::apps {
namespace {

struct SweepCase {
  const char* kernel;
  int processors;
};

class KernelSweep : public ::testing::TestWithParam<SweepCase> {};

fx::FxProgram build(const char* kernel, int p) {
  if (std::string_view(kernel) == "sor") {
    SorParams params;
    params.processors = p;
    params.n = 128;
    params.iterations = 4;
    params.flops_per_iteration = 2e6;
    return make_sor(params);
  }
  if (std::string_view(kernel) == "2dfft") {
    Fft2dParams params;
    params.processors = p;
    params.n = 128;
    params.iterations = 3;
    params.flops_per_phase = 1e6;
    return make_fft2d(params);
  }
  if (std::string_view(kernel) == "t2dfft") {
    Tfft2dParams params;
    params.processors = p;
    params.n = 128;
    params.iterations = 3;
    params.flops_per_stage = 1e6;
    return make_tfft2d(params);
  }
  if (std::string_view(kernel) == "seq") {
    SeqParams params;
    params.processors = p;
    params.n = 8;
    params.iterations = 1;
    params.row_io_time = sim::millis(5);
    return make_seq(params);
  }
  if (std::string_view(kernel) == "hist") {
    HistParams params;
    params.processors = p;
    params.iterations = 4;
    params.flops_per_iteration = 1e6;
    return make_hist(params);
  }
  AirshedParams params;
  params.processors = p;
  params.hours = 1;
  params.steps_per_hour = 2;
  params.preprocess_flops = 5e6;
  params.horizontal_flops = 2e6;
  params.chemistry_flops = 2e6;
  params.transpose_chunks = 2;
  params.chunk_flops = 1e6;
  return make_airshed(params);
}

TEST_P(KernelSweep, CompletesWithSaneTraffic) {
  const SweepCase scenario = GetParam();
  sim::Simulator simulator(2026);
  TestbedConfig config;
  config.workstations = scenario.processors;
  config.pvm.keepalives_enabled = false;
  Testbed testbed(simulator, config);
  testbed.start();

  const sim::SimTime end = fx::run_program(
      testbed.vm(), build(scenario.kernel, scenario.processors));
  EXPECT_GT(end.seconds(), 0.0);
  ASSERT_GT(testbed.capture().size(), 10u)
      << scenario.kernel << " P=" << scenario.processors;

  // Participants stay within the processor set, and every participating
  // host both sends and receives something (all our kernels are global).
  std::set<int> senders, receivers;
  for (const auto& p : testbed.capture().packets()) {
    EXPECT_LT(p.src, scenario.processors);
    EXPECT_LT(p.dst, scenario.processors);
    senders.insert(p.src);
    receivers.insert(p.dst);
  }
  EXPECT_EQ(static_cast<int>(receivers.size()), scenario.processors)
      << scenario.kernel;
  EXPECT_GE(static_cast<int>(senders.size()), scenario.processors / 2)
      << scenario.kernel;
  EXPECT_EQ(testbed.vm().simulator().now().ns(), simulator.now().ns());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllP, KernelSweep,
    ::testing::Values(
        SweepCase{"sor", 2}, SweepCase{"sor", 4}, SweepCase{"sor", 8},
        SweepCase{"2dfft", 2}, SweepCase{"2dfft", 4}, SweepCase{"2dfft", 8},
        SweepCase{"t2dfft", 2}, SweepCase{"t2dfft", 4},
        SweepCase{"t2dfft", 8}, SweepCase{"seq", 2}, SweepCase{"seq", 4},
        SweepCase{"seq", 8}, SweepCase{"hist", 2}, SweepCase{"hist", 4},
        SweepCase{"hist", 8}, SweepCase{"airshed", 2},
        SweepCase{"airshed", 4}, SweepCase{"airshed", 8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.kernel) + "_P" +
             std::to_string(info.param.processors);
    });

}  // namespace
}  // namespace fxtraf::apps
