// Thread-safety contract of the simulation core, written for
// ThreadSanitizer: build with -DFXTRAF_SANITIZE=thread and any hidden
// shared mutable state between concurrently running Simulators (a
// global RNG, logger state, an event-queue static) shows up as a data
// race.  Without TSan the test still verifies the shared-nothing
// property behaviourally: concurrent trials digest identically to the
// same trials run alone.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "apps/trial.hpp"
#include "simcore/log.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "trace/digest.hpp"

namespace fxtraf {
namespace {

apps::TrialScenario scenario_for(std::uint64_t seed) {
  apps::TrialScenario scenario;
  scenario.kernel = "2dfft";
  scenario.scale = 0.05;
  scenario.seed = seed;
  scenario.testbed.host.deschedule_probability = 0.02;  // RNG traffic
  return scenario;
}

TEST(ThreadSafetyTest, ConcurrentSimulatorsDoNotInteract) {
  constexpr int kThreads = 4;
  // Reference digests, computed with no concurrency.
  std::vector<trace::TraceDigest> expected;
  for (int i = 0; i < kThreads; ++i) {
    expected.push_back(
        trace::digest_of(apps::run_trial(scenario_for(100 + i)).packets));
  }

  std::vector<trace::TraceDigest> observed(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &observed] {
      observed[static_cast<std::size_t>(i)] =
          trace::digest_of(apps::run_trial(scenario_for(100 + i)).packets);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(observed[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)])
        << "trial " << i << " changed under concurrency";
  }
}

TEST(ThreadSafetyTest, LoggerLevelIsAtomic) {
  // set_level/level from many threads: a race here is UB on a plain
  // static; with std::atomic TSan stays quiet and the final level is
  // one of the written values.
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([i] {
      for (int n = 0; n < 1000; ++n) {
        sim::Logger::set_level(i % 2 == 0 ? sim::LogLevel::kOff
                                          : sim::LogLevel::kError);
        (void)sim::Logger::level();
      }
    });
  }
  for (auto& t : threads) t.join();
  const sim::LogLevel final_level = sim::Logger::level();
  EXPECT_TRUE(final_level == sim::LogLevel::kOff ||
              final_level == sim::LogLevel::kError);
  sim::Logger::set_level(sim::LogLevel::kOff);
}

TEST(ThreadSafetyTest, RngInstancesAreIndependent) {
  // Two Rng objects with the same seed, advanced on different threads,
  // must march through the same sequence (no shared generator state).
  std::vector<std::uint64_t> a(1000), b(1000);
  std::thread ta([&a] {
    sim::Rng rng(77);
    for (auto& v : a) v = rng.next_u64();
  });
  std::thread tb([&b] {
    sim::Rng rng(77);
    for (auto& v : b) v = rng.next_u64();
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fxtraf
