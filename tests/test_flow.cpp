// Flow-level fast path: max-min fair share, the fluid network model,
// the fxc lowering, and the flow trial driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "apps/flow_trial.hpp"
#include "apps/source_registry.hpp"
#include "apps/trial.hpp"
#include "ethernet/topology.hpp"
#include "flow/fair_share.hpp"
#include "flow/lowering.hpp"
#include "flow/measure.hpp"
#include "flow/network.hpp"
#include "flow/simulation.hpp"
#include "fxc/parser.hpp"
#include "fxc/sema/predictor.hpp"
#include "simcore/simulator.hpp"

namespace fxtraf {
namespace {

using Routes = std::vector<std::vector<int>>;

// --- max-min fair share: hand-computed fixtures ------------------------

TEST(FairShare, SingleBottleneckSplitsEvenly) {
  const std::vector<double> capacity{10.0};
  const Routes routes{{0}, {0}, {0}, {0}};
  const std::vector<double> rates = flow::max_min_rates(capacity, routes);
  ASSERT_EQ(rates.size(), 4u);
  for (double r : rates) EXPECT_NEAR(r, 2.5, 1e-9);
}

TEST(FairShare, TwoBottleneckChain) {
  // The classic parking-lot: A crosses both links, B only the first,
  // C only the second.  Link 1 (capacity 8) saturates first at rate 4,
  // freezing A and C; B then takes link 0's remaining headroom.
  const std::vector<double> capacity{10.0, 8.0};
  const Routes routes{{0, 1}, {0}, {1}};
  const std::vector<double> rates = flow::max_min_rates(capacity, routes);
  EXPECT_NEAR(rates[0], 4.0, 1e-9);
  EXPECT_NEAR(rates[1], 6.0, 1e-9);
  EXPECT_NEAR(rates[2], 4.0, 1e-9);
}

TEST(FairShare, StarUplinkOversubscription) {
  // Three senders into one receiver port: the receive direction is the
  // bottleneck; every transmit direction keeps headroom.
  const std::vector<double> capacity{10.0, 10.0, 10.0, 10.0};
  const Routes routes{{0, 3}, {1, 3}, {2, 3}};
  const std::vector<double> rates = flow::max_min_rates(capacity, routes);
  for (double r : rates) EXPECT_NEAR(r, 10.0 / 3.0, 1e-9);
}

TEST(FairShare, RateCapFreedCapacityRedistributes) {
  const std::vector<double> capacity{12.0};
  const Routes routes{{0}, {0}, {0}};
  const std::vector<double> caps{2.0, flow::kUncapped, flow::kUncapped};
  const std::vector<double> rates = flow::max_min_rates(capacity, routes, caps);
  EXPECT_NEAR(rates[0], 2.0, 1e-9);
  EXPECT_NEAR(rates[1], 5.0, 1e-9);
  EXPECT_NEAR(rates[2], 5.0, 1e-9);
}

TEST(FairShare, ZeroCapMeansStalled) {
  const std::vector<double> capacity{10.0};
  const Routes routes{{0}, {0}};
  const std::vector<double> caps{0.0, flow::kUncapped};
  const std::vector<double> rates = flow::max_min_rates(capacity, routes, caps);
  EXPECT_EQ(rates[0], 0.0);
  EXPECT_NEAR(rates[1], 10.0, 1e-9);
}

// --- max-min fair share: allocation properties ------------------------

TEST(FairShare, AllocationIsFeasibleAndMaxMin) {
  // Deterministic pseudo-random problems; for each, the allocation must
  // be feasible and max-min optimal: every flow is either at its cap or
  // crosses a saturated resource on which it holds a maximal rate.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const int resources = 1 + static_cast<int>(next() % 12);
    const int flows = 1 + static_cast<int>(next() % 40);
    std::vector<double> capacity;
    for (int r = 0; r < resources; ++r) {
      capacity.push_back(1.0 + static_cast<double>(next() % 1000) / 10.0);
    }
    Routes routes(static_cast<std::size_t>(flows));
    std::vector<double> caps(static_cast<std::size_t>(flows),
                             flow::kUncapped);
    for (int f = 0; f < flows; ++f) {
      const int hops = 1 + static_cast<int>(next() % 4);
      for (int h = 0; h < hops; ++h) {
        const int r = static_cast<int>(next() % resources);
        auto& route = routes[static_cast<std::size_t>(f)];
        if (std::find(route.begin(), route.end(), r) == route.end()) {
          route.push_back(r);
        }
      }
      if (next() % 4 == 0) {
        caps[static_cast<std::size_t>(f)] =
            static_cast<double>(next() % 200) / 10.0;
      }
    }
    const std::vector<double> rates =
        flow::max_min_rates(capacity, routes, caps);

    std::vector<double> load(capacity.size(), 0.0);
    for (int f = 0; f < flows; ++f) {
      for (int r : routes[static_cast<std::size_t>(f)]) {
        load[static_cast<std::size_t>(r)] += rates[static_cast<std::size_t>(f)];
      }
    }
    for (std::size_t r = 0; r < capacity.size(); ++r) {
      EXPECT_LE(load[r], capacity[r] * (1.0 + 1e-7) + 1e-7);
    }
    for (int f = 0; f < flows; ++f) {
      const auto fi = static_cast<std::size_t>(f);
      if (rates[fi] >= caps[fi] - 1e-7) continue;  // cap-limited
      bool bottlenecked = false;
      for (int r : routes[fi]) {
        const auto ri = static_cast<std::size_t>(r);
        if (load[ri] < capacity[ri] - 1e-6 * capacity[ri] - 1e-7) continue;
        double max_rate = 0.0;
        for (int g = 0; g < flows; ++g) {
          const auto gi = static_cast<std::size_t>(g);
          const auto& route = routes[gi];
          if (std::find(route.begin(), route.end(), r) != route.end()) {
            max_rate = std::max(max_rate, rates[gi]);
          }
        }
        if (rates[fi] >= max_rate - 1e-6 * max_rate - 1e-7) {
          bottlenecked = true;
          break;
        }
      }
      EXPECT_TRUE(bottlenecked)
          << "flow " << f << " rate " << rates[fi]
          << " neither capped nor bottlenecked (trial " << trial << ")";
    }
  }
}

// --- the fluid network model ------------------------------------------

TEST(FlowNetwork, SharedBusIsOneResource) {
  const flow::FlowNetwork net(eth::TopologySpec{}, 8);
  EXPECT_TRUE(net.shared_bus());
  EXPECT_EQ(net.resource_count(), 1u);
  const flow::FlowRoute route = net.route(2, 5);
  EXPECT_EQ(route.count, 1);
  EXPECT_EQ(route.resources[0], 0);
  EXPECT_EQ(route.latency_s, 0.0);
}

TEST(FlowNetwork, StarRoutesThroughPerHostDirections) {
  eth::TopologySpec spec;
  spec.kind = eth::TopologySpec::Kind::kStar;
  const flow::FlowNetwork net(spec, 8);
  EXPECT_EQ(net.resource_count(), 16u);
  const flow::FlowRoute route = net.route(3, 6);
  ASSERT_EQ(route.count, 2);
  EXPECT_EQ(route.resources[0], 6);   // host 3 transmit
  EXPECT_EQ(route.resources[1], 13);  // host 6 receive
  EXPECT_GT(route.latency_s, 0.0);
}

TEST(FlowNetwork, TreeCrossLeafTakesUplinks) {
  eth::TopologySpec spec;
  spec.kind = eth::TopologySpec::Kind::kTree;
  spec.switches = 4;
  const flow::FlowNetwork net(spec, 16);  // 4 hosts per leaf
  const flow::FlowRoute same = net.route(0, 3);
  EXPECT_EQ(same.count, 2);
  const flow::FlowRoute cross = net.route(0, 15);
  ASSERT_EQ(cross.count, 4);
  EXPECT_EQ(cross.resources[0], 0);            // host 0 transmit
  EXPECT_EQ(cross.resources[1], 32 + 2 * 0);   // leaf 0 -> root
  EXPECT_EQ(cross.resources[2], 32 + 2 * 3 + 1);  // root -> leaf 3
  EXPECT_EQ(cross.resources[3], 2 * 15 + 1);   // host 15 receive
  EXPECT_GT(cross.latency_s, same.latency_s);
}

TEST(FlowNetwork, FromTopologyMatchesSpecModelAndStampsSlots) {
  for (auto kind : {eth::TopologySpec::Kind::kStar,
                    eth::TopologySpec::Kind::kTree}) {
    eth::TopologySpec spec;
    spec.kind = kind;
    spec.switches = 3;
    sim::Simulator simulator(1);
    eth::Topology topology(simulator, spec, 9);
    const flow::FlowNetwork from_links =
        flow::FlowNetwork::from_topology(topology);
    const flow::FlowNetwork from_spec(spec, 9);
    EXPECT_EQ(from_links.capacities(), from_spec.capacities());
    int expected_slot = 0;
    for (const eth::Link* link : topology.links()) {
      EXPECT_EQ(link->flow_slot(), expected_slot);
      expected_slot += link->directions();
    }
  }
}

// --- lowering consistency against the traffic predictor ---------------

TEST(FlowLowering, SharedBusIterationMatchesPredictor) {
  // The lowering prices communication exactly as the predictor does, so
  // a fluid run on an idle shared bus must land on the predictor's
  // iteration period.  (Not a tautology: the simulator really drains
  // flows through max-min allocation and real event scheduling.)
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    const fxc::SourceProgram program = fxc::parse_source(kernel.source);
    const fxc::TrafficPrediction prediction = fxc::predict_traffic(program);

    const flow::FlowNetwork net(eth::TopologySpec{}, program.processors);
    flow::FlowLoweringOptions options;
    options.shared_medium = true;
    sim::Simulator simulator(1);
    flow::FlowSimulation sim(simulator, net,
                             flow::lower_to_flows(program, options), {});
    sim.start();
    simulator.run();
    const flow::FlowSimResult result = sim.finish();
    ASSERT_TRUE(result.completed) << kernel.name;
    const double per_iteration =
        result.sim_seconds / std::max(1, program.iterations);
    EXPECT_NEAR(per_iteration, prediction.iteration_seconds,
                0.05 * prediction.iteration_seconds)
        << kernel.name;
  }
}

TEST(FlowLowering, SparseSynthesisMatchesDenseAtSmallP) {
  // At P below the dense limit both paths are available; force the
  // sparse one and check it reproduces the dense totals for the
  // patterns it supports (stencil, reduction, broadcast).
  for (const char* name : {"sor", "hist"}) {
    const auto kernel = apps::source_kernel_by_name(name);
    ASSERT_TRUE(kernel.has_value());
    const fxc::SourceProgram program = fxc::parse_source(kernel->source);

    flow::FlowLoweringOptions dense;
    flow::FlowLoweringOptions sparse;
    sparse.dense_processor_limit = 1;  // everything through the sparse path
    const flow::FlowProgram from_dense =
        flow::lower_to_flows(program, dense);
    const flow::FlowProgram from_sparse =
        flow::lower_to_flows(program, sparse);
    // The tree reduction serializes differently than the dense step
    // schedule, so compare total captured bytes, not step structure.
    EXPECT_NEAR(from_sparse.capture_bytes_per_iteration(),
                from_dense.capture_bytes_per_iteration(),
                0.25 * from_dense.capture_bytes_per_iteration())
        << name;
  }
}

TEST(FlowLowering, AllToAllPatternsHaveNoSparseForm) {
  const auto kernel = apps::source_kernel_by_name("fft2d");
  ASSERT_TRUE(kernel.has_value());
  fxc::SourceProgram program = fxc::parse_source(kernel->source);
  program = fxc::scale_to_processors(program, 1024);
  flow::FlowLoweringOptions options;
  EXPECT_THROW((void)flow::lower_to_flows(program, options),
               std::invalid_argument);
}

// --- the flow trial driver --------------------------------------------

apps::TrialScenario flow_scenario(const std::string& kernel, int processors) {
  apps::TrialScenario scenario;
  scenario.kernel = kernel;
  scenario.fidelity = apps::Fidelity::kFlow;
  scenario.processors = processors;
  scenario.scale = 0.25;
  scenario.telemetry.enabled = true;
  scenario.telemetry.store_packets = false;
  scenario.telemetry.keep_bandwidth_series = true;
  return scenario;
}

TEST(FlowTrial, IsDeterministic) {
  const apps::TrialScenario scenario = flow_scenario("sor", 4);
  const apps::TrialRun a = apps::run_trial(scenario);
  const apps::TrialRun b = apps::run_trial(scenario);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.packets_seen, b.packets_seen);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_GT(a.packets_seen, 0u);
  EXPECT_TRUE(a.streamed);
  EXPECT_GT(a.stream.fundamental_hz, 0.0);
}

TEST(FlowTrial, RegistryAliasesResolve) {
  for (const char* kernel : {"2dfft", "t2dfft"}) {
    const apps::TrialRun run = apps::run_trial(flow_scenario(kernel, 4));
    EXPECT_GT(run.sim_seconds, 0.0) << kernel;
    EXPECT_GT(run.packets_seen, 0u) << kernel;
  }
}

TEST(FlowTrial, RejectsPacketOnlyFeatures) {
  {
    apps::TrialScenario scenario = flow_scenario("sor", 4);
    scenario.faults.frame_ber = 1e-6;
    EXPECT_THROW((void)apps::run_trial(scenario), std::invalid_argument);
  }
  {
    apps::TrialScenario scenario = flow_scenario("sor", 4);
    scenario.telemetry.capture_max_packets = 10;
    EXPECT_THROW((void)apps::run_trial(scenario), std::invalid_argument);
  }
  {
    apps::TrialScenario scenario = flow_scenario("sor", 4);
    scenario.faults.daemon_outages.push_back({1, 0.1, 0.1});
    EXPECT_THROW((void)apps::run_trial(scenario), std::invalid_argument);
  }
  {
    // And the reverse: packet trials reject the flow-only hosts knob.
    apps::TrialScenario scenario;
    scenario.kernel = "sor";
    scenario.processors = 4;
    scenario.hosts = 64;
    EXPECT_THROW((void)apps::run_trial(scenario), std::invalid_argument);
  }
}

TEST(FlowTrial, CpuFaultWindowStretchesTheRun) {
  const apps::TrialScenario base = flow_scenario("sor", 4);
  const double healthy = apps::run_trial(base).sim_seconds;

  apps::TrialScenario slowed = base;
  fault::HostFaultWindow window;
  window.host = 2;
  window.start_s = 0.0;
  window.duration_s = 3600.0;
  window.cpu_factor = 0.5;
  slowed.faults.host_faults.push_back(window);
  const double degraded = apps::run_trial(slowed).sim_seconds;
  EXPECT_GT(degraded, healthy * 1.05);
}

TEST(FlowTrial, NetworkDownWindowDelaysCompletion) {
  const apps::TrialScenario base = flow_scenario("sor", 4);
  const double healthy = apps::run_trial(base).sim_seconds;

  apps::TrialScenario faulted = base;
  fault::HostFaultWindow window;
  window.host = 1;
  window.start_s = 0.0;
  window.duration_s = healthy;  // dead for the healthy run's whole span
  window.cpu_factor = 1.0;
  window.network_down = true;
  faulted.faults.host_faults.push_back(window);
  const apps::TrialRun run = apps::run_trial(faulted);
  EXPECT_GT(run.sim_seconds, healthy * 1.5);
  EXPECT_GT(run.packets_seen, 0u);
}

TEST(FlowTrial, TenThousandHostStarSmoke) {
  // The acceptance point: a >= 10k-host star trial completes with
  // bounded memory (no telemetry series, no pair tracking) and real
  // traffic on the sparse lowering path.
  apps::TrialScenario scenario;
  scenario.kernel = "sor";
  scenario.fidelity = apps::Fidelity::kFlow;
  scenario.processors = 10000;
  scenario.hosts = 10000;
  scenario.scale = 0.1;  // two iterations
  scenario.testbed.topology.kind = eth::TopologySpec::Kind::kStar;
  const apps::TrialRun run = apps::run_trial(scenario);
  EXPECT_GT(run.sim_seconds, 0.0);
  EXPECT_GT(run.packets_seen, 10000u);
  EXPECT_GT(run.events_executed, 0u);
}

// --- the shared measurement pipeline ----------------------------------

TEST(FlowMeasure, RecoversASyntheticPeriod) {
  // 2 s of 10 ms bins: 250 ms period, 100 ms bursts of 80 KiB/s.
  std::vector<double> series(200, 0.0);
  for (std::size_t i = 0; i < series.size(); ++i) {
    if ((i % 25) < 10) series[i] = 80.0;
  }
  const std::vector<double> pair_bytes{32000.0, 64000.0};
  flow::FundamentalsInput input;
  input.bandwidth_kbs = series;
  input.bin_seconds = 0.01;
  input.pair_capture_bytes = pair_bytes;
  input.iterations = 8;
  const flow::MeasuredFundamentals m = flow::measure_fundamentals(input);
  EXPECT_NEAR(m.period_s, 0.25, 0.03);
  EXPECT_NEAR(m.idle_s_per_period, 0.15, 0.03);
  EXPECT_NEAR(m.burst_bytes, 8000.0, 1e-6);
}

}  // namespace
}  // namespace fxtraf
