// Tests for the second-wave analysis tools: Pearson/lag correlation,
// autocorrelation period estimation, spectrograms, and the network
// broker's admission control.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/broker.hpp"
#include "core/correlation.hpp"
#include "dsp/autocorr.hpp"
#include "dsp/spectrogram.hpp"
#include "simcore/rng.hpp"

namespace fxtraf {
namespace {

std::vector<double> tone(double f, double dt, std::size_t n,
                         double phase = 0.0, double dc = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = dc + std::sin(2.0 * std::numbers::pi * f * dt *
                             static_cast<double>(i) +
                         phase);
  }
  return x;
}

TEST(CorrelationTest, PearsonBasics) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  std::vector<double> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(core::pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(core::pearson(a, c), -1.0, 1e-12);
  std::vector<double> flat(5, 7.0);
  EXPECT_DOUBLE_EQ(core::pearson(a, flat), 0.0);
  EXPECT_THROW((void)core::pearson(a, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(CorrelationTest, UncorrelatedNoiseIsNearZero) {
  sim::Rng rng(3);
  std::vector<double> a(20000), b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next_double();
    b[i] = rng.next_double();
  }
  EXPECT_LT(std::abs(core::pearson(a, b)), 0.05);
}

TEST(CorrelationTest, BestLagRecoversShift) {
  const auto a = tone(1.0, 0.01, 2000);
  // b leads a by 25 samples: b[i] = a[i+25].
  std::vector<double> b(2000);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::sin(2.0 * std::numbers::pi * 1.0 * 0.01 *
                    static_cast<double>(i + 25));
  }
  const auto result = core::best_lag(a, b, 40);
  EXPECT_EQ(result.lag_bins, -25);  // a aligns with b shifted back
  EXPECT_GT(result.correlation, 0.99);
}

TEST(CorrelationTest, InPhaseConnectionsCorrelate) {
  // Two synthetic connections bursting together vs one out of phase.
  auto make_flow = [](net::HostId src, net::HostId dst, double offset) {
    std::vector<trace::PacketRecord> f;
    for (double burst = offset; burst < 60.0; burst += 1.0) {
      for (int i = 0; i < 20; ++i) {
        trace::PacketRecord r;
        r.timestamp =
            sim::SimTime{static_cast<std::int64_t>((burst + i * 1e-3) * 1e9)};
        r.bytes = 1518;
        r.src = src;
        r.dst = dst;
        f.push_back(r);
      }
    }
    return f;
  };
  auto all = make_flow(0, 1, 0.0);
  auto f2 = make_flow(1, 2, 0.0);   // in phase
  auto f3 = make_flow(2, 3, 0.5);   // anti-phase
  all.insert(all.end(), f2.begin(), f2.end());
  all.insert(all.end(), f3.begin(), f3.end());
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) {
              return a.timestamp < b.timestamp;
            });
  const auto study = core::correlate_connections(all, sim::millis(100));
  ASSERT_EQ(study.connections.size(), 3u);
  // (0,1) vs (1,2): in phase.
  EXPECT_GT(study.at(0, 1), 0.9);
  // (0,1) vs (2,3): opposite phase.
  EXPECT_LT(study.at(0, 2), 0.0);
  EXPECT_GT(study.max_offdiagonal, 0.9);
  EXPECT_LT(study.min_offdiagonal, 0.0);
}

TEST(AutocorrTest, PeriodicSignalPeaksAtItsPeriod) {
  const auto x = tone(2.0, 0.01, 8192, 0.0, 5.0);  // period 50 samples
  const auto estimate = dsp::estimate_period(x, 400);
  EXPECT_EQ(estimate.lag_samples, 50u);
  EXPECT_GT(estimate.correlation, 0.95);
}

TEST(AutocorrTest, BurstCombPeriod) {
  // Impulse train with period 73 samples.
  std::vector<double> x(8192, 0.0);
  for (std::size_t i = 0; i < x.size(); i += 73) x[i] = 100.0;
  const auto estimate = dsp::estimate_period(x, 500);
  EXPECT_EQ(estimate.lag_samples, 73u);
}

TEST(AutocorrTest, NoiseHasNoPeriod) {
  sim::Rng rng(9);
  std::vector<double> x(8192);
  for (auto& v : x) v = rng.next_double();
  const auto estimate = dsp::estimate_period(x, 500, 0.3);
  EXPECT_EQ(estimate.lag_samples, 0u);
}

TEST(AutocorrTest, ZeroLagIsUnity) {
  const auto x = tone(1.0, 0.01, 1000);
  const auto r = dsp::autocorrelation(x, 10);
  ASSERT_GE(r.size(), 1u);
  EXPECT_NEAR(r[0], 1.0, 1e-9);
}

TEST(SpectrogramTest, TracksAChangingTone) {
  // 5 Hz for the first half, 15 Hz for the second.
  const double dt = 0.01;
  std::vector<double> x;
  auto first = tone(5.0, dt, 4096);
  auto second = tone(15.0, dt, 4096);
  x.insert(x.end(), first.begin(), first.end());
  x.insert(x.end(), second.begin(), second.end());

  const auto sg = dsp::spectrogram(x, dt, {.window_samples = 512,
                                           .hop_samples = 256});
  ASSERT_GT(sg.frames(), 20u);
  EXPECT_NEAR(sg.peak_frequency(1, 1.0, 49.0), 5.0, 0.5);
  EXPECT_NEAR(sg.peak_frequency(sg.frames() - 2, 1.0, 49.0), 15.0, 0.5);
}

TEST(SpectrogramTest, RejectsBadOptions) {
  std::vector<double> x(100, 1.0);
  EXPECT_THROW((void)dsp::spectrogram(x, 0.0), std::invalid_argument);
  EXPECT_THROW((void)dsp::spectrogram(x, 0.01, {.window_samples = 1}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)dsp::spectrogram(x, 0.01, {.window_samples = 8, .hop_samples = 0}),
      std::invalid_argument);
}

TEST(SpectrogramTest, ShortInputYieldsNoFrames) {
  std::vector<double> x(10, 1.0);
  const auto sg = dsp::spectrogram(x, 0.01, {.window_samples = 64});
  EXPECT_EQ(sg.frames(), 0u);
}

// ---- NetworkBroker ----------------------------------------------------

core::TrafficSpec transpose_spec(double work_s = 60.0) {
  return core::TrafficSpec::perfectly_parallel(
      fx::PatternKind::kAllToAll, work_s,
      [](int p) { return 512.0 * 512.0 * 8.0 / (p * p); });
}

TEST(BrokerTest, AdmissionCommitsDutyCycleBandwidth) {
  core::NetworkBroker broker;
  const auto admitted = broker.admit("fft", transpose_spec());
  EXPECT_GT(admitted.committed_bandwidth, 0.0);
  EXPECT_LT(admitted.committed_bandwidth, broker.capacity());
  EXPECT_NEAR(broker.committed_fraction(),
              admitted.network_committed_fraction, 1e-12);
  EXPECT_EQ(broker.active_reservations(), 1u);
}

TEST(BrokerTest, LaterAdmissionsSeeLessBandwidth) {
  core::NetworkBroker broker;
  const auto first = broker.admit("a", transpose_spec());
  const auto second = broker.admit("b", transpose_spec());
  // Same program, less capacity left: the burst stretches.
  EXPECT_GE(second.point.burst_interval_seconds,
            first.point.burst_interval_seconds);
  EXPECT_GT(broker.committed_fraction(), first.network_committed_fraction);
}

TEST(BrokerTest, ReleaseReturnsCapacity) {
  core::NetworkBroker broker;
  const auto first = broker.admit("a", transpose_spec());
  const double committed = broker.committed_fraction();
  broker.release(first.reservation_id);
  EXPECT_DOUBLE_EQ(broker.committed_fraction(), 0.0);
  broker.release(first.reservation_id);  // idempotent
  EXPECT_EQ(broker.active_reservations(), 0u);
  EXPECT_GT(committed, 0.0);
}

TEST(BrokerTest, CommunicationBoundProgramsEventuallyRejected) {
  core::NetworkBroker broker(1.25e6, 2, 4);
  // A hog: almost no compute, enormous bursts -> duty cycle near 1.
  const auto hog = core::TrafficSpec::perfectly_parallel(
      fx::PatternKind::kAllToAll, 0.01,
      [](int) { return 8.0 * 1024 * 1024; });
  int admitted = 0;
  try {
    for (int i = 0; i < 64; ++i) {
      broker.admit("hog", hog);
      ++admitted;
    }
    FAIL() << "brokers must saturate eventually";
  } catch (const std::exception&) {
    EXPECT_GE(admitted, 1);
    EXPECT_LT(admitted, 64);
  }
}

}  // namespace
}  // namespace fxtraf
