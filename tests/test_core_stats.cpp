// Tests for the core analysis pipeline: summary stats, packet stats,
// bandwidth estimators, Fourier traffic model, synthesis, and the QoS
// negotiation model.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/bandwidth.hpp"
#include "core/characterization.hpp"
#include "core/fourier_model.hpp"
#include "core/packet_stats.hpp"
#include "core/qos.hpp"
#include "core/stats.hpp"
#include "core/synth.hpp"

namespace fxtraf::core {
namespace {

trace::PacketRecord packet(double t, std::uint32_t bytes,
                           net::HostId src = 0, net::HostId dst = 1) {
  trace::PacketRecord r;
  r.timestamp = sim::SimTime{static_cast<std::int64_t>(t * 1e9)};
  r.bytes = bytes;
  r.src = src;
  r.dst = dst;
  return r;
}

TEST(StatsTest, WelfordMatchesClosedForm) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  const Summary s = w.summary();
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);  // classic example set
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const double one[] = {3.5};
  const Summary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(PacketStatsTest, SizeAndInterarrival) {
  std::vector<trace::PacketRecord> t{packet(0.0, 58), packet(0.010, 1518),
                                     packet(0.040, 1000)};
  const Summary sizes = packet_size_stats(t);
  EXPECT_DOUBLE_EQ(sizes.min, 58);
  EXPECT_DOUBLE_EQ(sizes.max, 1518);
  const Summary inter = interarrival_ms_stats(t);
  EXPECT_EQ(inter.count, 2u);
  EXPECT_DOUBLE_EQ(inter.min, 10.0);
  EXPECT_DOUBLE_EQ(inter.max, 30.0);
}

TEST(PacketStatsTest, LifetimeAverageBandwidth) {
  // 2048 bytes over 2 seconds = 1 KB/s.
  std::vector<trace::PacketRecord> t{packet(0.0, 1024), packet(2.0, 1024)};
  EXPECT_DOUBLE_EQ(average_bandwidth_kbs(t), 1.0);
  EXPECT_DOUBLE_EQ(average_bandwidth_kbs({}), 0.0);
}

TEST(PacketStatsTest, TrimodalDistributionDetected) {
  std::vector<trace::PacketRecord> t;
  double time = 0.0;
  for (int i = 0; i < 100; ++i) t.push_back(packet(time += 0.001, 1518));
  for (int i = 0; i < 50; ++i) t.push_back(packet(time += 0.001, 1138));
  for (int i = 0; i < 75; ++i) t.push_back(packet(time += 0.001, 58));
  const auto modes = size_modes(t);
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_EQ(modes[0].representative_bytes, 1518u);
  EXPECT_EQ(modes[1].representative_bytes, 58u);
  EXPECT_EQ(modes[2].representative_bytes, 1138u);
}

TEST(PacketStatsTest, NearbySizesClusterIntoOneMode) {
  std::vector<trace::PacketRecord> t;
  double time = 0.0;
  for (std::uint32_t s : {1500u, 1510u, 1518u}) {
    for (int i = 0; i < 30; ++i) t.push_back(packet(time += 0.001, s));
  }
  EXPECT_EQ(size_modes(t).size(), 1u);
}

TEST(BandwidthTest, BinnedSeriesConservesBytes) {
  std::vector<trace::PacketRecord> t{packet(0.001, 1024), packet(0.005, 1024),
                                     packet(0.015, 2048), packet(0.095, 512)};
  const BinnedSeries series =
      binned_bandwidth(t, sim::millis(10), sim::SimTime::zero(),
                       sim::SimTime{100'000'000});
  ASSERT_EQ(series.size(), 10u);
  double total_bytes = 0.0;
  for (double kbs : series.kb_per_s) total_bytes += kbs * 1024.0 * 0.01;
  EXPECT_NEAR(total_bytes, 1024 + 1024 + 2048 + 512, 1e-6);
  EXPECT_DOUBLE_EQ(series.kb_per_s[0], 2048.0 / 1024.0 / 0.01);
}

TEST(BandwidthTest, SlidingWindowTracksBursts) {
  std::vector<trace::PacketRecord> t;
  // Burst of 10 packets at t=1.0, silence, burst at t=2.0.
  for (int i = 0; i < 10; ++i) t.push_back(packet(1.0 + i * 1e-4, 1024));
  for (int i = 0; i < 10; ++i) t.push_back(packet(2.0 + i * 1e-4, 1024));
  const auto series = sliding_window_bandwidth(t, sim::millis(10));
  ASSERT_EQ(series.size(), t.size());
  // Peak of the first burst: all 10 KB inside the window -> 1000 KB/s.
  EXPECT_NEAR(series[9].kb_per_s, 1000.0, 1e-9);
  // First packet of the second burst: the window only covers itself.
  EXPECT_NEAR(series[10].kb_per_s, 100.0, 1e-9);
}

TEST(BandwidthTest, InvalidArgumentsThrow) {
  std::vector<trace::PacketRecord> t{packet(0.0, 100)};
  EXPECT_THROW(sliding_window_bandwidth(t, sim::Duration::zero()),
               std::invalid_argument);
  EXPECT_THROW(binned_bandwidth(t, sim::Duration::zero()),
               std::invalid_argument);
}

TEST(BandwidthTest, EmptyTraceYieldsEmptySeries) {
  const std::vector<trace::PacketRecord> none;
  const BinnedSeries series = binned_bandwidth(none, sim::millis(10));
  EXPECT_EQ(series.size(), 0u);
  EXPECT_DOUBLE_EQ(series.interval_s, 0.01);
  EXPECT_TRUE(sliding_window_bandwidth(none, sim::millis(10)).empty());
}

TEST(BandwidthTest, SinglePacketTrace) {
  // One packet: the implicit [first, last+1ns) span is a single bin
  // holding all the bytes; the sliding window sees only the packet.
  const std::vector<trace::PacketRecord> one{packet(1.0, 2048)};
  const BinnedSeries series = binned_bandwidth(one, sim::millis(10));
  ASSERT_EQ(series.size(), 1u);
  EXPECT_NEAR(series.kb_per_s[0], 2048.0 / 1024.0 / 0.01, 1e-9);
  const auto sliding = sliding_window_bandwidth(one, sim::millis(10));
  ASSERT_EQ(sliding.size(), 1u);
  EXPECT_NEAR(sliding[0].kb_per_s, 2048.0 / 1024.0 / 0.01, 1e-9);
}

TEST(BandwidthTest, BinBoundaryPacketsLandInTheRightBin) {
  // Packets exactly on a 10 ms edge belong to the bin they open
  // (half-open [edge, edge+10ms) bins), and a packet exactly at `to`
  // is excluded, never written past the end of the series.
  std::vector<trace::PacketRecord> t{packet(0.0, 100), packet(0.010, 200),
                                     packet(0.020, 400), packet(0.030, 800)};
  const BinnedSeries series =
      binned_bandwidth(t, sim::millis(10), sim::SimTime::zero(),
                       sim::SimTime{30'000'000});
  ASSERT_EQ(series.size(), 3u);
  const double to_kbs = 1.0 / 1024.0 / 0.01;
  EXPECT_DOUBLE_EQ(series.kb_per_s[0], 100 * to_kbs);
  EXPECT_DOUBLE_EQ(series.kb_per_s[1], 200 * to_kbs);
  EXPECT_DOUBLE_EQ(series.kb_per_s[2], 400 * to_kbs);  // 0.030 excluded
}

TEST(BandwidthTest, DefaultSpanIncludesTheLastPacket) {
  // Whole-trace binning widens the span by 1 ns so the final packet is
  // counted even when the trace length is an exact bin multiple.
  std::vector<trace::PacketRecord> t{packet(0.0, 100), packet(0.010, 200)};
  const BinnedSeries series = binned_bandwidth(t, sim::millis(10));
  ASSERT_EQ(series.size(), 2u);
  double total_bytes = 0.0;
  for (double kbs : series.kb_per_s) total_bytes += kbs * 1024.0 * 0.01;
  EXPECT_NEAR(total_bytes, 300.0, 1e-9);
}

std::vector<trace::PacketRecord> periodic_trace(double f0_hz, double duration,
                                                std::uint32_t bytes) {
  // A burst of packets every 1/f0 seconds.
  std::vector<trace::PacketRecord> t;
  for (double burst = 0.0; burst < duration; burst += 1.0 / f0_hz) {
    for (int i = 0; i < 8; ++i) {
      t.push_back(packet(burst + i * 0.0012, bytes));
    }
  }
  return t;
}

TEST(CharacterizationTest, PeriodicTraceYieldsCorrectFundamental) {
  const auto t = periodic_trace(5.0, 60.0, 1518);
  const TrafficCharacterization c = characterize(t);
  EXPECT_NEAR(c.fundamental.frequency_hz, 5.0, 0.1);
  EXPECT_GT(c.fundamental.harmonic_power_fraction, 0.8);
  EXPECT_GT(c.peaks.size(), 3u);  // a burst comb has many harmonics
}

TEST(FourierModelTest, RecoversSinusoidExactly) {
  const double dt = 0.01;
  const std::size_t n = 4096;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Bin-centered frequency so there is no leakage.
    const double f = 25.0 / (static_cast<double>(n) * dt);
    x[i] = 100.0 + 40.0 * std::cos(2.0 * std::numbers::pi * f * dt *
                                       static_cast<double>(i) +
                                   0.7);
  }
  const auto spectrum = dsp::periodogram(x, dt);
  const auto model = FourierTrafficModel::fit(spectrum, 1);
  ASSERT_EQ(model.components().size(), 1u);
  EXPECT_NEAR(model.mean_kbs(), 100.0, 1e-9);
  EXPECT_NEAR(model.components()[0].amplitude_kbs, 40.0, 1e-9);
  EXPECT_NEAR(model.components()[0].phase_rad, 0.7, 1e-9);
  const auto rebuilt = model.reconstruct(n, dt);
  EXPECT_LT(reconstruction_nrmse(x, rebuilt), 1e-9);
}

TEST(FourierModelTest, ConvergenceSweepIsMonotoneIsh) {
  const auto t = periodic_trace(2.0, 120.0, 1024);
  const BinnedSeries series = binned_bandwidth(t, sim::millis(10));
  const auto sweep = convergence_sweep(series, 16);
  ASSERT_GE(sweep.size(), 8u);
  EXPECT_GT(sweep.back().captured_power_fraction,
            sweep.front().captured_power_fraction);
  EXPECT_LT(sweep.back().nrmse, sweep.front().nrmse);
  // Captured power fraction is a fraction.
  for (const auto& pt : sweep) {
    EXPECT_GE(pt.captured_power_fraction, 0.0);
    EXPECT_LE(pt.captured_power_fraction, 1.0 + 1e-9);
  }
}

TEST(SynthTest, GeneratedTrafficMatchesModelBandwidth) {
  // Model: 200 KB/s mean with a 2 Hz, 150 KB/s swing.
  const double dt = 0.01;
  const std::size_t n = 8192;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 200.0 + 150.0 * std::cos(2.0 * std::numbers::pi * 2.0 * dt *
                                    static_cast<double>(i));
  }
  const auto spectrum = dsp::periodogram(x, dt);
  const auto model = FourierTrafficModel::fit(spectrum, 4);
  const auto synthetic = generate_trace(model, 40.0);
  ASSERT_GT(synthetic.size(), 100u);
  // Average rate should be close to the model mean.
  EXPECT_NEAR(average_bandwidth_kbs(synthetic), 200.0, 20.0);
  // And the dominant periodicity should survive the round trip: the
  // strongest spectral bin of the regenerated traffic sits at 2 Hz.
  const auto c = characterize(synthetic);
  const std::size_t argmax = c.spectrum.argmax_in_band(0.1, 20.0);
  ASSERT_LT(argmax, c.spectrum.size());
  EXPECT_NEAR(c.spectrum.frequency_hz[argmax], 2.0, 0.1);
}

TEST(QosTest, AllToAllPrefersFewerProcessorsThanNeighbor) {
  // Fixed work, burst shrinking with P^2 (a transpose).
  auto burst = [](int p) { return 4.0 * 1024 * 1024 / (p * p); };
  const NetworkState network{.capacity_bytes_per_s = 1.25e6,
                             .committed_fraction = 0.0,
                             .min_processors = 2,
                             .max_processors = 32};
  const auto all2all = negotiate(
      TrafficSpec::perfectly_parallel(fx::PatternKind::kAllToAll, 60.0, burst),
      network);
  const auto neighbor = negotiate(
      TrafficSpec::perfectly_parallel(fx::PatternKind::kNeighbor, 60.0, burst),
      network);
  // The communication pattern determines how strong the tension is
  // (section 7.3): all-to-all's per-connection bandwidth shrinks with P.
  EXPECT_LE(all2all.best.processors, neighbor.best.processors);
  EXPECT_EQ(all2all.sweep.size(), 31u);
}

TEST(QosTest, BurstIntervalFormulaHolds) {
  auto burst = [](int) { return 1.25e5; };  // 0.1 s at full capacity
  TrafficSpec spec = TrafficSpec::perfectly_parallel(
      fx::PatternKind::kBroadcast, 10.0, burst);
  NetworkState network;
  network.min_processors = 4;
  network.max_processors = 4;
  const auto result = negotiate(spec, network);
  // Broadcast: one active connection gets the full capacity.
  EXPECT_DOUBLE_EQ(result.best.burst_bandwidth_bytes_per_s, 1.25e6);
  EXPECT_DOUBLE_EQ(result.best.burst_seconds, 0.1);
  EXPECT_DOUBLE_EQ(result.best.local_seconds, 2.5);
  EXPECT_DOUBLE_EQ(result.best.burst_interval_seconds, 2.6);
}

TEST(QosTest, CommittedCapacityReducesBandwidth) {
  auto burst = [](int) { return 1.25e5; };
  TrafficSpec spec = TrafficSpec::perfectly_parallel(
      fx::PatternKind::kBroadcast, 10.0, burst);
  NetworkState network;
  network.min_processors = 4;
  network.max_processors = 4;
  network.committed_fraction = 0.5;
  const auto result = negotiate(spec, network);
  EXPECT_DOUBLE_EQ(result.best.burst_bandwidth_bytes_per_s, 0.625e6);
}

TEST(QosTest, InvalidInputsThrow) {
  NetworkState network;
  EXPECT_THROW(negotiate(TrafficSpec{}, network), std::invalid_argument);
  auto burst = [](int) { return 1.0; };
  TrafficSpec spec = TrafficSpec::perfectly_parallel(
      fx::PatternKind::kBroadcast, 1.0, burst);
  network.committed_fraction = 1.0;
  EXPECT_THROW(negotiate(spec, network), std::invalid_argument);
  network.committed_fraction = 0.0;
  network.max_processors = 0;
  EXPECT_THROW(negotiate(spec, network), std::invalid_argument);
}

}  // namespace
}  // namespace fxtraf::core
