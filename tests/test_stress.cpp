// Stress and fuzz-style tests: randomized event-queue workloads, lexer
// robustness on garbage, and numeric edge cases in the statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/stats.hpp"
#include "dsp/fft.hpp"
#include "fxc/lexer.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace fxtraf {
namespace {

TEST(StressTest, EventQueueRandomizedOrderAndCancellation) {
  sim::Rng rng(2024);
  sim::EventQueue queue;
  std::vector<sim::EventId> ids;
  int fired = 0;
  const int total = 20000;
  for (int i = 0; i < total; ++i) {
    ids.push_back(queue.push(
        sim::SimTime{static_cast<std::int64_t>(rng.next_u64() % 1'000'000)},
        [&fired] { ++fired; }));
  }
  // Cancel a random third (some twice, some after firing later).
  int cancelled = 0;
  for (int i = 0; i < total; ++i) {
    if (rng.next_bool(1.0 / 3.0)) {
      queue.cancel(ids[static_cast<std::size_t>(i)]);
      ++cancelled;
    }
  }
  sim::SimTime last = sim::SimTime::zero();
  while (!queue.empty()) {
    auto [t, action] = queue.pop();
    EXPECT_GE(t, last);
    last = t;
    action();
  }
  EXPECT_EQ(fired, total - cancelled);
  // Double-cancel after drain: harmless.
  for (const auto& id : ids) queue.cancel(id);
  EXPECT_TRUE(queue.empty());
}

TEST(StressTest, SimulatorHandlesSelfRescheduling) {
  sim::Simulator simulator(5);
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 10000) simulator.schedule_in(sim::micros(10), tick);
  };
  simulator.schedule_now(tick);
  simulator.run();
  EXPECT_EQ(ticks, 10000);
  EXPECT_NEAR(simulator.now().seconds(), 9999 * 10e-6, 1e-9);
}

TEST(FuzzTest, LexerNeverCrashesOnGarbage) {
  sim::Rng rng(99);
  const std::string alphabet =
      "abz09 ._,()*!#\n\t$%@{}[]<>..e+-EMSmsuskg\"'";
  for (int round = 0; round < 500; ++round) {
    std::string input;
    const auto length = rng.next_below(200);
    for (std::uint64_t i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    try {
      const auto tokens = fxc::lex(input);
      ASSERT_FALSE(tokens.empty());
      EXPECT_EQ(tokens.back().kind, fxc::TokenKind::kEnd);
    } catch (const std::runtime_error&) {
      // Rejection with a diagnostic is the other acceptable outcome.
    }
  }
}

TEST(FuzzTest, LexRoundTripOnValidNumbers) {
  sim::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double value = rng.next_uniform(0.001, 1e7);
    char literal[32];
    std::snprintf(literal, sizeof literal, "%.6g", value);
    const auto tokens = fxc::lex(literal);
    ASSERT_EQ(tokens.size(), 2u) << literal;
    EXPECT_NEAR(tokens[0].number, value, 1e-3 * value) << literal;
  }
}

TEST(StressTest, WelfordStableOnLargeUniformStream) {
  core::Welford w;
  sim::Rng rng(3);
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i) w.add(rng.next_uniform(100.0, 200.0));
  const auto s = w.summary();
  EXPECT_NEAR(s.mean, 150.0, 0.2);
  EXPECT_NEAR(s.stddev, 100.0 / std::sqrt(12.0), 0.2);
  EXPECT_GE(s.min, 100.0);
  EXPECT_LT(s.max, 200.0);
}

TEST(StressTest, WelfordHandlesHugeOffsets) {
  // Catastrophic cancellation check: tiny variance on a huge mean.
  core::Welford w;
  for (int i = 0; i < 1000; ++i) {
    w.add(1e12 + (i % 2 == 0 ? 0.5 : -0.5));
  }
  const auto s = w.summary();
  EXPECT_NEAR(s.mean, 1e12, 1.0);
  EXPECT_NEAR(s.stddev, 0.5, 1e-3);
}

TEST(StressTest, LargeFftRoundTripAccuracy) {
  sim::Rng rng(11);
  std::vector<dsp::Complex> x(1 << 18);
  for (auto& v : x) v = {rng.next_uniform(-1, 1), rng.next_uniform(-1, 1)};
  auto back = dsp::fft(dsp::fft(x), /*inverse=*/true);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(x[i] - back[i]));
  }
  EXPECT_LT(worst, 1e-9);
}

}  // namespace
}  // namespace fxtraf
