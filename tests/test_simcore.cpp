// Unit tests for simulated time, the event queue, and the simulator loop.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "simcore/action.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/time.hpp"

namespace fxtraf::sim {
namespace {

TEST(TimeTest, DurationFactoriesRoundCorrectly) {
  EXPECT_EQ(seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(millis(10.0).ns(), 10'000'000);
  EXPECT_EQ(micros(9.6).ns(), 9'600);
  EXPECT_EQ(nanos(7).ns(), 7);
  EXPECT_EQ(seconds(-1.0).ns(), -1'000'000'000);
}

TEST(TimeTest, ArithmeticAndComparison) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + seconds(2.5);
  EXPECT_GT(t1, t0);
  EXPECT_EQ((t1 - t0).seconds(), 2.5);
  EXPECT_EQ(t1 - seconds(2.5), t0);
  EXPECT_LT(t1, SimTime::infinity());
}

TEST(TimeTest, DurationScaling) {
  EXPECT_EQ((millis(10) * 3).ns(), 30'000'000);
  EXPECT_EQ(millis(30) / millis(10), 3);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime{30}, [&] { order.push_back(3); });
  q.push(SimTime{10}, [&] { order.push_back(1); });
  q.push(SimTime{20}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime{100}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelledEventsAreSkipped) {
  EventQueue q;
  int fired = 0;
  q.push(SimTime{1}, [&] { ++fired; });
  const EventId id = q.push(SimTime{2}, [&] { fired += 100; });
  q.push(SimTime{3}, [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue q;
  const EventId id = q.push(SimTime{1}, [] {});
  q.pop().second();
  q.cancel(id);  // must not corrupt accounting
  EXPECT_TRUE(q.empty());
  q.push(SimTime{2}, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, NextTimeSkipsDeadPrefix) {
  EventQueue q;
  const EventId id = q.push(SimTime{1}, [] {});
  q.push(SimTime{5}, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime{5});
}

// Generation-tag regression tests: slab slots are recycled, so a stale
// EventId (fired or cancelled) must never reach an unrelated event that
// happens to reuse the same slot.

TEST(EventQueueTest, StaleIdAfterFireCannotCancelSlotReuser) {
  EventQueue q;
  int fired = 0;
  const EventId stale = q.push(SimTime{1}, [&] { ++fired; });
  q.pop().second();  // fires and frees the slot
  // The very next push reuses the freed slot (LIFO free list).
  const EventId fresh = q.push(SimTime{2}, [&] { fired += 10; });
  EXPECT_EQ(fresh.slot, stale.slot);
  EXPECT_NE(fresh.generation, stale.generation);
  q.cancel(stale);  // must be a no-op, not kill the reuser
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 11);
}

TEST(EventQueueTest, DoubleCancelIsIdempotent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(SimTime{1}, [&] { fired += 100; });
  q.push(SimTime{2}, [&] { ++fired; });
  q.cancel(id);
  q.cancel(id);  // second cancel: no double-count, no slot corruption
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.stats().cancelled, 1u);
  // The slot freed by the cancel is handed to the next push; the twice-
  // cancelled id must not reach it either.
  const EventId reuser = q.push(SimTime{3}, [&] { fired += 10; });
  EXPECT_EQ(reuser.slot, id.slot);
  q.cancel(id);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 11);
}

TEST(EventQueueTest, CancelledSlotReleasesClosureEagerly) {
  EventQueue q;
  auto guard = std::make_shared<int>(7);
  std::weak_ptr<int> watch = guard;
  const EventId id = q.push(SimTime{1}, [g = std::move(guard)] { (void)g; });
  EXPECT_FALSE(watch.expired());
  q.cancel(id);
  // The closure dies at cancel time, not when the tombstone surfaces.
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueueTest, StatsCountInlineAndHeapActions) {
  EventQueue q;
  q.push(SimTime{1}, [] {});  // trivially inline
  EXPECT_EQ(q.stats().heap_backed_actions, 0u);
  EXPECT_EQ(q.stats().allocations_per_event(), 0.0);
  struct Big {
    unsigned char bulk[UniqueAction::kInlineBytes + 1];
  };
  q.push(SimTime{2}, [big = Big{}] { (void)big; });
  EXPECT_EQ(q.stats().scheduled, 2u);
  EXPECT_EQ(q.stats().heap_backed_actions, 1u);
  EXPECT_DOUBLE_EQ(q.stats().allocations_per_event(), 0.5);
  while (!q.empty()) q.pop().second();
}

TEST(UniqueActionTest, MoveTransfersOwnershipAndInlineState) {
  int calls = 0;
  UniqueAction a([&] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_FALSE(a.heap_backed());
  UniqueAction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueActionTest, HoldsMoveOnlyCallables) {
  auto token = std::make_unique<int>(41);
  int got = 0;
  UniqueAction a([t = std::move(token), &got] { got = *t + 1; });
  a();
  EXPECT_EQ(got, 42);
}

TEST(SimulatorTest, AdvancesTimeMonotonically) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_at(SimTime{50}, [&] { times.push_back(sim.now().ns()); });
  sim.schedule_at(SimTime{10}, [&] {
    times.push_back(sim.now().ns());
    sim.schedule_in(Duration{5}, [&] { times.push_back(sim.now().ns()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 15, 50}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesNow) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime{100}, [&] { ++fired; });
  sim.schedule_at(SimTime{200}, [&] { ++fired; });
  sim.run_until(SimTime{150});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime{150});
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime{200});
}

TEST(SimulatorTest, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime{1}, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(SimTime{2}, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending_events());
}

TEST(SimulatorTest, ScheduleNowRunsAfterQueuedSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{10}, [&] {
    order.push_back(1);
    sim.schedule_now([&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime{10});
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentlySeeded) {
  Rng base(5);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace fxtraf::sim
