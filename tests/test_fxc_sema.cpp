// Tests for the sema diagnostics engine and every lint pass: each rule
// has a positive case (fires) and a negative case (stays silent).
#include <gtest/gtest.h>

#include "apps/source_registry.hpp"
#include "fxc/lower.hpp"
#include "fxc/parser.hpp"
#include "fxc/sema/passes.hpp"

namespace fxtraf::fxc {
namespace {

DiagnosticSink lint(const char* source) {
  DiagnosticSink sink;
  const auto program = parse_source(source, sink);
  EXPECT_TRUE(program.has_value()) << sink.render_all();
  if (program) run_sema(*program, sink);
  return sink;
}

TEST(DiagnosticsTest, RenderCarriesEverything) {
  const Diagnostic d{Severity::kWarning, kRuleLoadImbalance, "uneven blocks",
                     SrcPos{3, 7}, "use 4 processors"};
  const std::string text = render(d);
  EXPECT_NE(text.find("fx source:3:7"), std::string::npos);
  EXPECT_NE(text.find("warning"), std::string::npos);
  EXPECT_NE(text.find("uneven blocks"), std::string::npos);
  EXPECT_NE(text.find("[fxc-load-imbalance]"), std::string::npos);
  EXPECT_NE(text.find("fixit: use 4 processors"), std::string::npos);
}

TEST(DiagnosticsTest, RenderOmitsUnknownPosition) {
  const Diagnostic d{Severity::kError, kRuleBadProgram, "boom", SrcPos{}, ""};
  EXPECT_EQ(render(d).find(":0:0"), std::string::npos);
}

TEST(DiagnosticsTest, SinkCountsAndFinds) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  sink.report(Severity::kWarning, kRuleDeadWrite, "w");
  sink.report(Severity::kError, kRuleHaloOverflow, "e", SrcPos{2, 1});
  EXPECT_EQ(sink.count(Severity::kWarning), 1u);
  EXPECT_EQ(sink.count(Severity::kError), 1u);
  EXPECT_TRUE(sink.has_errors());
  ASSERT_NE(sink.find(kRuleHaloOverflow), nullptr);
  EXPECT_EQ(sink.find(kRuleHaloOverflow)->pos.line, 2);
  EXPECT_EQ(sink.find("no-such-rule"), nullptr);
}

TEST(SemaPassTest, PassesHaveNames) {
  for (const auto& pass : sema_passes()) {
    EXPECT_FALSE(pass->name().empty());
  }
  EXPECT_GE(sema_passes().size(), 6u);
}

// --- fxc-halo-overflow ------------------------------------------------

TEST(SemaPassTest, HaloOverflowFires) {
  // Block size is 16/8 = 2; offset 3 cannot be served from one neighbor.
  const auto sink = lint(
      "program p\nprocessors 8\n"
      "array u real4 (16, 16) distribute (block, *)\n"
      "stencil u offsets (3, 0)\n");
  ASSERT_NE(sink.find(kRuleHaloOverflow), nullptr);
  EXPECT_EQ(sink.find(kRuleHaloOverflow)->severity, Severity::kError);
  EXPECT_EQ(sink.find(kRuleHaloOverflow)->pos.line, 4);
  EXPECT_TRUE(sink.has_errors());
}

TEST(SemaPassTest, HaloWithinBlockIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 8\n"
      "array u real4 (16, 16) distribute (block, *)\n"
      "stencil u offsets (1, 0)\n");
  EXPECT_EQ(sink.find(kRuleHaloOverflow), nullptr);
}

TEST(SemaPassTest, HaloOverflowTracksRedistribution) {
  // Fine under (block, *) on 2 procs (block 8 > 2); after redistributing
  // to 8-way blocks of 2 the same stencil overflows.
  const auto sink = lint(
      "program p\nprocessors 8\n"
      "array u real4 (16, 16) distribute (block, *) on 0..2\n"
      "stencil u offsets (2, 0)\n"
      "redistribute u (block, *) on 0..8\n"
      "stencil u offsets (2, 0)\n");
  ASSERT_NE(sink.find(kRuleHaloOverflow), nullptr);
  EXPECT_EQ(sink.find(kRuleHaloOverflow)->pos.line, 6);
}

// --- fxc-distribution-mismatch ----------------------------------------

TEST(SemaPassTest, DistributionMismatchFires) {
  // All offsets along the distributed rows; columns are offset-free.
  const auto sink = lint(
      "program p\nprocessors 4\n"
      "array u real4 (64, 64) distribute (block, *)\n"
      "stencil u offsets (2, 0)\n");
  ASSERT_NE(sink.find(kRuleDistributionMismatch), nullptr);
  EXPECT_EQ(sink.find(kRuleDistributionMismatch)->severity,
            Severity::kWarning);
  EXPECT_FALSE(sink.find(kRuleDistributionMismatch)->fixit.empty());
  EXPECT_FALSE(sink.has_errors());
}

TEST(SemaPassTest, BalancedStencilIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\n"
      "array u real4 (64, 64) distribute (block, *)\n"
      "stencil u offsets (1, 1)\n");
  EXPECT_EQ(sink.find(kRuleDistributionMismatch), nullptr);
}

// --- fxc-redundant-redistribute ---------------------------------------

TEST(SemaPassTest, NoOpRedistributeFires) {
  const auto sink = lint(
      "program p\nprocessors 4\n"
      "array a real8 (64, 64) distribute (block, *)\n"
      "redistribute a (block, *)\n");
  ASSERT_NE(sink.find(kRuleRedundantRedistribute), nullptr);
  EXPECT_EQ(sink.find(kRuleRedundantRedistribute)->pos.line, 4);
}

TEST(SemaPassTest, AdjacentRoundTripFires) {
  const auto sink = lint(
      "program p\nprocessors 4\n"
      "array a real8 (64, 64) distribute (block, *)\n"
      "redistribute a (*, block)\n"
      "redistribute a (block, *)\n");
  EXPECT_NE(sink.find(kRuleRedundantRedistribute), nullptr);
}

TEST(SemaPassTest, RedistributeWithUseBetweenIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\n"
      "array a real8 (64, 64) distribute (block, *)\n"
      "redistribute a (*, block)\n"
      "local 1e6\n"
      "redistribute a (block, *)\n");
  EXPECT_EQ(sink.find(kRuleRedundantRedistribute), nullptr);
}

// --- fxc-dead-write ---------------------------------------------------

TEST(SemaPassTest, DeadWriteFires) {
  const auto sink = lint(
      "program p\nprocessors 4\n"
      "array c real4 (8, 8) distribute (block, *)\n"
      "read c element 4 row_io 10ms\n"
      "local 1e6\n");
  ASSERT_NE(sink.find(kRuleDeadWrite), nullptr);
  EXPECT_EQ(sink.find(kRuleDeadWrite)->severity, Severity::kWarning);
}

TEST(SemaPassTest, ConsumedReadIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\n"
      "array c real4 (8, 8) distribute (block, *)\n"
      "read c element 4 row_io 10ms\n"
      "stencil c offsets (1, 1)\n");
  EXPECT_EQ(sink.find(kRuleDeadWrite), nullptr);
}

// --- fxc-hoistable-collective -----------------------------------------

TEST(SemaPassTest, HoistableCollectiveFires) {
  const auto sink = lint(
      "program p\nprocessors 4\niterations 10\n"
      "broadcast bytes 2048 root 0\n");
  ASSERT_NE(sink.find(kRuleHoistableCollective), nullptr);
  EXPECT_EQ(sink.find(kRuleHoistableCollective)->severity,
            Severity::kWarning);
}

TEST(SemaPassTest, CollectiveWithComputeIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\niterations 10\n"
      "local 5e6\n"
      "broadcast bytes 2048 root 0\n");
  EXPECT_EQ(sink.find(kRuleHoistableCollective), nullptr);
}

TEST(SemaPassTest, SingleIterationCollectiveIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\niterations 1\n"
      "broadcast bytes 2048 root 0\n");
  EXPECT_EQ(sink.find(kRuleHoistableCollective), nullptr);
}

// --- fxc-load-imbalance -----------------------------------------------

TEST(SemaPassTest, LoadImbalanceFires) {
  // 100 rows over 8 processors: blocks of 13, last rank gets 9.
  const auto sink = lint(
      "program p\nprocessors 8\n"
      "array u real4 (100, 16) distribute (block, *)\n"
      "stencil u offsets (1, 1)\n");
  ASSERT_NE(sink.find(kRuleLoadImbalance), nullptr);
  EXPECT_EQ(sink.find(kRuleLoadImbalance)->severity, Severity::kWarning);
}

TEST(SemaPassTest, DivisibleExtentIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 8\n"
      "array u real4 (64, 16) distribute (block, *)\n"
      "stencil u offsets (1, 1)\n");
  EXPECT_EQ(sink.find(kRuleLoadImbalance), nullptr);
}

// --- structural gate ---------------------------------------------------

TEST(SemaGateTest, CompileThrowsSemaErrorWithDiagnostics) {
  SourceProgram program = parse_source(
      "program p\nprocessors 8\n"
      "array u real4 (16, 16) distribute (block, *)\n"
      "stencil u offsets (3, 0)\n");
  try {
    (void)compile(program);
    FAIL() << "halo overflow must fail compilation";
  } catch (const SemaError& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    bool has_halo = false;
    for (const Diagnostic& d : e.diagnostics()) {
      has_halo |= d.rule == kRuleHaloOverflow;
    }
    EXPECT_TRUE(has_halo);
    EXPECT_NE(std::string(e.what()).find(kRuleHaloOverflow),
              std::string::npos);
  }
}

TEST(SemaGateTest, SemaErrorIsInvalidArgument) {
  // Pre-sema callers catch std::invalid_argument; keep that contract.
  SourceProgram program = parse_source(
      "program p\nprocessors 8\n"
      "array u real4 (16, 16) distribute (block, *)\n"
      "stencil u offsets (3, 0)\n");
  EXPECT_THROW((void)compile(program), std::invalid_argument);
}

TEST(SemaGateTest, StructuralErrorsSkipLints) {
  // IR-built program with a statement referencing an unknown array: the
  // structural pass reports it and the lint passes do not run (they
  // would index the missing declaration).
  SourceProgram program;
  program.name = "p";
  program.processors = 4;
  program.body.push_back(StencilAssign{"ghost", {1, 1}, 5.0});
  DiagnosticSink sink;
  EXPECT_FALSE(run_sema(program, sink));
  ASSERT_NE(sink.find(kRuleUnknownArray), nullptr);
  EXPECT_TRUE(sink.has_errors());
}

TEST(SemaGateTest, RegistryKernelsHaveNoErrors) {
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    DiagnosticSink sink;
    const auto program = parse_source(kernel.source, sink);
    ASSERT_TRUE(program.has_value()) << kernel.name;
    run_sema(*program, sink);
    EXPECT_FALSE(sink.has_errors())
        << kernel.name << ":\n"
        << sink.render_all();
  }
}

// --- canonical diagnostic order ---------------------------------------

TEST(DeterminismTest, SortCanonicalOrdersByPositionRuleMessage) {
  DiagnosticSink sink;
  sink.report(Severity::kWarning, kRuleLoadImbalance, "b", SrcPos{5, 1});
  sink.report(Severity::kError, kRuleHaloOverflow, "a", SrcPos{3, 9});
  sink.report(Severity::kWarning, kRuleDeadWrite, "z", SrcPos{3, 2});
  sink.report(Severity::kWarning, kRuleDeadWrite, "a", SrcPos{3, 2});
  sink.sort_canonical();
  const auto& d = sink.diagnostics();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0].message, "a");
  EXPECT_EQ(d[0].pos.column, 2);
  EXPECT_EQ(d[1].message, "z");
  EXPECT_EQ(d[2].rule, kRuleHaloOverflow);
  EXPECT_EQ(d[3].rule, kRuleLoadImbalance);
}

TEST(DeterminismTest, RenderAllIsByteStableAcrossRuns) {
  // Two warnings on the same program: pass registration order must not
  // show through run_sema's output.
  const char* source =
      "program p\nprocessors 8\niterations 10\n"
      "array u real4 (100, 16) distribute (block, *)\n"
      "stencil u offsets (2, 0)\n";
  const std::string first = lint(source).render_all();
  const std::string second = lint(source).render_all();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // And the sink really is canonically ordered, not just stably random.
  auto sink = lint(source);
  const auto before = sink.render_all();
  sink.sort_canonical();
  EXPECT_EQ(before, sink.render_all());
}

// --- communication-safety checkers ------------------------------------

TEST(SafetyCheckerTest, EverySeededMutantReportsItsRule) {
  ASSERT_GE(apps::mutant_kernels().size(), 6u);
  for (const apps::MutantKernel& mutant : apps::mutant_kernels()) {
    DiagnosticSink sink;
    const auto program = parse_source(mutant.source, sink);
    ASSERT_TRUE(program.has_value()) << mutant.name;
    run_sema(*program, sink);
    const Diagnostic* hit = sink.find(mutant.expected_rule);
    ASSERT_NE(hit, nullptr) << mutant.name << ":\n" << sink.render_all();
    EXPECT_EQ(hit->severity, Severity::kError) << mutant.name;
    EXPECT_FALSE(hit->edits.empty())
        << mutant.name << ": safety diagnostics must carry a fix-it";
  }
}

TEST(SafetyCheckerTest, CleanKernelsHaveZeroDiagnostics) {
  // The acceptance gate: no errors AND no warnings on the six paper
  // kernels — fxc-lint --Werror --all must exit 0.
  for (const apps::SourceKernel& kernel : apps::source_kernels()) {
    DiagnosticSink sink;
    const auto program = parse_source(kernel.source, sink);
    ASSERT_TRUE(program.has_value()) << kernel.name;
    run_sema(*program, sink);
    EXPECT_TRUE(sink.empty()) << kernel.name << ":\n" << sink.render_all();
  }
}

TEST(SafetyCheckerTest, MatchedSendRecvIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\niterations 5\n"
      "array a real8 (256, 256) distribute (block, *) on 0..2\n"
      "local 1e6\n"
      "send a to 2..4\n"
      "recv a from 0..2 on 2..4\n");
  EXPECT_EQ(sink.find(kRuleUnmatchedSendRecv), nullptr);
  EXPECT_EQ(sink.find(kRuleFragmentGrowth), nullptr);
  EXPECT_FALSE(sink.has_errors()) << sink.render_all();
}

TEST(SafetyCheckerTest, GuardedCollectiveWithRootInsideIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\niterations 5\n"
      "local 1e6\n"
      "reduce bytes 2048 flops 0 root 1 on 0..2\n"
      "broadcast bytes 2048 root 1 on 0..2\n");
  EXPECT_EQ(sink.find(kRuleCollectiveMismatch), nullptr);
  EXPECT_EQ(sink.find(kRuleUnsyncedOverlap), nullptr);
  EXPECT_FALSE(sink.has_errors()) << sink.render_all();
}

TEST(SafetyCheckerTest, GuardedStencilOnOwnersIsSilent) {
  const auto sink = lint(
      "program p\nprocessors 4\niterations 5\n"
      "array u real4 (256, 256) distribute (block, *) on 0..2\n"
      "stencil u offsets (1, 1) on 0..2\n");
  EXPECT_EQ(sink.find(kRuleUnsyncedOverlap), nullptr);
  EXPECT_FALSE(sink.has_errors()) << sink.render_all();
}

TEST(SafetyCheckerTest, RecvAfterRedistributeIsSilent) {
  // The redistribute delivers the array to 2..4, so the guarded stencil
  // there reads locally-present data: no unsynced overlap.
  const auto sink = lint(
      "program p\nprocessors 4\niterations 5\n"
      "array u real4 (256, 256) distribute (block, *) on 0..2\n"
      "local 1e6 on 0..2\n"
      "redistribute u (block, *) on 2..4\n"
      "stencil u offsets (1, 1) on 2..4\n");
  EXPECT_EQ(sink.find(kRuleUnsyncedOverlap), nullptr)
      << sink.render_all();
}

TEST(SafetyCheckerTest, SingleIterationUnmatchedSendIsWarningOnly) {
  const auto sink = lint(
      "program p\nprocessors 4\niterations 1\n"
      "array a real8 (256, 256) distribute (block, *) on 0..2\n"
      "local 1e6\n"
      "send a to 2..4\n");
  const Diagnostic* d = sink.find(kRuleFragmentGrowth);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(sink.has_errors());
}

// --- parse_source sink overload ---------------------------------------

TEST(ParseSinkTest, ParseFailureLandsInSink) {
  DiagnosticSink sink;
  const auto program = parse_source("program p\nprocessors 4\nfrobnicate\n",
                                    sink);
  EXPECT_FALSE(program.has_value());
  ASSERT_NE(sink.find(kRuleUnknownStatement), nullptr);
  EXPECT_EQ(sink.find(kRuleUnknownStatement)->pos.line, 3);
}

}  // namespace
}  // namespace fxtraf::fxc
