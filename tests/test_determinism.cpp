// Determinism golden tests: the replay contract of the whole system.
//
// Two runs of the same kernel with the same seed must produce
// byte-identical captures (packet count, total bytes, FNV-1a over every
// record), and a parallel campaign must be bitwise identical, trial by
// trial, to a serial replay of the same specs.  A speedup check rides
// along where the hardware offers enough threads.
#include <gtest/gtest.h>

#include <thread>

#include "apps/trial.hpp"
#include "campaign/engine.hpp"
#include "campaign/seed.hpp"
#include "trace/digest.hpp"

namespace fxtraf {
namespace {

apps::TrialScenario small_scenario(const char* kernel, std::uint64_t seed) {
  apps::TrialScenario scenario;
  scenario.kernel = kernel;
  scenario.scale = 0.05;  // a few iterations per kernel, ~100ms wall each
  scenario.seed = seed;
  scenario.testbed.host.deschedule_probability = 0.01;  // exercise the RNG
  return scenario;
}

class KernelDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelDeterminism, SameSeedSameDigest) {
  const auto first = apps::run_trial(small_scenario(GetParam(), 9001));
  const auto second = apps::run_trial(small_scenario(GetParam(), 9001));
  const auto a = trace::digest_of(first.packets);
  const auto b = trace::digest_of(second.packets);
  EXPECT_GT(a.packet_count, 0u) << GetParam();
  EXPECT_EQ(a, b) << GetParam() << ": " << trace::to_string(a) << " vs "
                  << trace::to_string(b);
  EXPECT_DOUBLE_EQ(first.sim_seconds, second.sim_seconds);
}

TEST_P(KernelDeterminism, DifferentSeedDifferentDigest) {
  // Deschedule injection draws from the seeded RNG, so distinct seeds
  // must perturb the timeline (guards against a silently ignored seed).
  const auto first = apps::run_trial(small_scenario(GetParam(), 1));
  const auto second = apps::run_trial(small_scenario(GetParam(), 2));
  EXPECT_NE(trace::digest_of(first.packets).fnv1a,
            trace::digest_of(second.packets).fnv1a)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelDeterminism,
                         ::testing::Values("sor", "2dfft", "t2dfft", "seq",
                                           "hist", "airshed"));

std::vector<campaign::TrialSpec> sweep_specs(std::size_t trials) {
  campaign::TrialSpec base;
  base.scenario = small_scenario("2dfft", 0);
  base.label = "2dfft";
  return campaign::seed_sweep(base, trials, 0xfeedbeef);
}

TEST(CampaignDeterminism, SerialAndParallelDigestsMatch) {
  const auto specs = sweep_specs(6);
  campaign::CampaignOptions serial;
  serial.threads = 1;
  serial.characterize = false;
  campaign::CampaignOptions parallel = serial;
  parallel.threads = 4;

  const auto a = campaign::run_campaign(specs, serial);
  const auto b = campaign::run_campaign(specs, parallel);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  ASSERT_EQ(a.failures, 0u);
  ASSERT_EQ(b.failures, 0u);
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].digest, b.trials[i].digest)
        << a.trials[i].label << ": " << trace::to_string(a.trials[i].digest)
        << " vs " << trace::to_string(b.trials[i].digest);
    EXPECT_EQ(a.trials[i].seed, b.trials[i].seed);
  }
  // Seeds are split per index, so every trial ran a distinct stream.
  for (std::size_t i = 1; i < a.trials.size(); ++i) {
    EXPECT_NE(a.trials[i].seed, a.trials[0].seed);
    EXPECT_NE(a.trials[i].digest.fnv1a, a.trials[0].digest.fnv1a);
  }
}

TEST(CampaignDeterminism, FaultedSerialAndParallelDigestsMatch) {
  // The replay contract must survive an active fault plan: fault streams
  // are derived statelessly per trial, so a parallel campaign under BER,
  // forced FCS corruption, and a daemon crash replays bitwise.
  auto specs = sweep_specs(4);
  for (auto& spec : specs) {
    spec.scenario.faults.frame_ber = 1e-6;
    spec.scenario.faults.corrupt_every_nth = 151;
    spec.scenario.faults.daemon_outages.push_back({/*host=*/1, 0.3, 0.2});
    spec.scenario.faults.watchdog_s = 300.0;
  }
  campaign::CampaignOptions serial;
  serial.threads = 1;
  serial.characterize = false;
  campaign::CampaignOptions parallel = serial;
  parallel.threads = 4;

  const auto a = campaign::run_campaign(specs, serial);
  const auto b = campaign::run_campaign(specs, parallel);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  double drops = 0.0;
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].ok, b.trials[i].ok) << a.trials[i].label;
    EXPECT_EQ(a.trials[i].digest, b.trials[i].digest)
        << a.trials[i].label << ": " << trace::to_string(a.trials[i].digest)
        << " vs " << trace::to_string(b.trials[i].digest);
    drops += a.trials[i].metric("drops_ber") + a.trials[i].metric("drops_fcs");
  }
  // The plan must actually have bitten, or this golden proves nothing.
  EXPECT_GT(drops, 0.0);
}

TEST(SharedBusGoldens, DigestsBitwiseStableAcrossLinkRefactor) {
  // Pinned digests captured on the pre-Link-interface Segment (seed
  // 20260808, scale 0.05, default hosts).  The shared-bus code path must
  // stay bit-identical behind the Link/Topology abstraction: any timing,
  // RNG-order, or delivery-order change in the refactored stack shows up
  // here as a digest mismatch.  Re-pin ONLY for an intentional
  // model-behavior change, never to make a refactor pass.
  struct Golden {
    const char* kernel;
    std::uint64_t packets;
    std::uint64_t bytes;
    std::uint64_t fnv1a;
  };
  static constexpr Golden kGoldens[] = {
      {"sor", 108u, 68664u, 0x1fb5c825a9c3e237ULL},
      {"2dfft", 8554u, 8674220u, 0x5f92a1956d61b2e2ULL},
      {"t2dfft", 5809u, 5580442u, 0x1e8c4d99d8794a5eULL},
      {"seq", 7209u, 590922u, 0xfdb46216d7fc27f5ULL},
      {"hist", 72u, 41616u, 0x5a70ced59488209fULL},
      {"airshed", 14559u, 11674698u, 0xf8c63a9ea4cb3179ULL},
  };
  for (const Golden& golden : kGoldens) {
    apps::TrialScenario scenario;
    scenario.kernel = golden.kernel;
    scenario.scale = 0.05;
    scenario.seed = 20260808;
    const auto run = apps::run_trial(scenario);
    EXPECT_EQ(run.digest.packet_count, golden.packets) << golden.kernel;
    EXPECT_EQ(run.digest.total_bytes, golden.bytes) << golden.kernel;
    EXPECT_EQ(run.digest.fnv1a, golden.fnv1a)
        << golden.kernel << ": got " << trace::to_string(run.digest);
  }
}

TEST(CampaignDeterminism, SixteenTrialSweepSpeedup) {
  // Acceptance criterion: a 16-trial 2DFFT seed sweep on >= 8 hardware
  // threads completes >= 4x faster than the serial loop with identical
  // per-trial digests.  The digest half runs everywhere; the wall-clock
  // half needs the threads.
  const unsigned hw = std::thread::hardware_concurrency();
  const auto specs = sweep_specs(16);
  campaign::CampaignOptions parallel;
  parallel.characterize = false;
  const auto par = campaign::run_campaign(specs, parallel);

  campaign::CampaignOptions serial = parallel;
  serial.threads = 1;
  const auto ser = campaign::run_campaign(specs, serial);

  ASSERT_EQ(par.trials.size(), 16u);
  ASSERT_EQ(par.failures + ser.failures, 0u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(par.trials[i].digest, ser.trials[i].digest)
        << par.trials[i].label;
  }
  if (hw < 8) {
    GTEST_SKIP() << "speedup assertion needs >= 8 hardware threads, have "
                 << hw;
  }
  EXPECT_GE(ser.wall_seconds / par.wall_seconds, 4.0)
      << "serial " << ser.wall_seconds << " s vs parallel "
      << par.wall_seconds << " s on " << par.threads_used << " threads";
}

}  // namespace
}  // namespace fxtraf
