// Tests for the QoS-capable switched network: switching, VC pacing,
// guarantee protection under load, and SPMD programs on the QoS testbed.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "apps/fft2d.hpp"
#include "apps/qos_testbed.hpp"
#include "atm/qos_network.hpp"
#include "core/packet_stats.hpp"
#include "fx/runtime.hpp"
#include "host/cross_traffic.hpp"
#include "net/stack.hpp"
#include "trace/capture.hpp"

namespace fxtraf {
namespace {

eth::Frame frame_of(net::HostId src, net::HostId dst, std::size_t payload) {
  net::IpDatagram d;
  d.src = src;
  d.dst = dst;
  d.proto = net::IpProto::kUdp;
  d.payload_bytes = payload;
  eth::Frame f;
  f.src = src;
  f.dst = dst;
  f.datagram = std::make_shared<const net::IpDatagram>(d);
  return f;
}

struct Switched {
  sim::Simulator sim{77};
  atm::QosNetwork network{sim};
  std::unique_ptr<atm::QosNetwork::Port> p0 = network.add_port(0);
  std::unique_ptr<atm::QosNetwork::Port> p1 = network.add_port(1);
  std::unique_ptr<atm::QosNetwork::Port> p2 = network.add_port(2);
};

TEST(QosNetworkTest, SwitchesToTheRightPort) {
  Switched s;
  int at1 = 0, at2 = 0;
  s.p1->set_receive_handler([&](const eth::Frame&) { ++at1; });
  s.p2->set_receive_handler([&](const eth::Frame&) { ++at2; });
  s.p0->send(frame_of(0, 1, 100));
  s.p0->send(frame_of(0, 2, 100));
  s.sim.run();
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(at2, 1);
  EXPECT_EQ(s.network.stats().frames_switched, 2u);
}

TEST(QosNetworkTest, NoCollisionDomain_ParallelPortsDontInterfere) {
  Switched s;
  std::vector<double> t1, t2;
  s.p1->set_receive_handler(
      [&](const eth::Frame&) { t1.push_back(s.sim.now().seconds()); });
  s.p2->set_receive_handler(
      [&](const eth::Frame&) { t2.push_back(s.sim.now().seconds()); });
  // Same instant, different output ports: both serialize in parallel.
  s.p0->send(frame_of(0, 1, 1460));
  s.p2->send(frame_of(2, 1, 0));  // also to port 1: that one queues
  s.p1->send(frame_of(1, 2, 1460));
  s.sim.run();
  ASSERT_EQ(t1.size(), 2u);
  ASSERT_EQ(t2.size(), 1u);
  // Ports 1 and 2 finished their first frames simultaneously.
  EXPECT_NEAR(t1[0], t2[0], 1e-9);
}

TEST(QosNetworkTest, ReservedVcIsPacedAtItsRate) {
  Switched s;
  s.network.reserve(0, 1, 125000.0);  // 125 KB/s
  std::vector<double> arrivals;
  s.p1->set_receive_handler(
      [&](const eth::Frame&) { arrivals.push_back(s.sim.now().seconds()); });
  for (int i = 0; i < 10; ++i) s.p0->send(frame_of(0, 1, 1222));  // 1300 wire
  s.sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  // Pacing: 1300 B at 125 KB/s = 10.4 ms between frames.
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_NEAR(arrivals[i] - arrivals[i - 1], 0.0104, 5e-4) << i;
  }
}

TEST(QosNetworkTest, GuaranteeSurvivesBestEffortFlood) {
  Switched s;
  s.network.reserve(0, 1, 250000.0);
  std::vector<double> reserved_arrivals;
  int flood_delivered = 0;
  s.p1->set_receive_handler([&](const eth::Frame& f) {
    if (f.src == 0) {
      reserved_arrivals.push_back(s.sim.now().seconds());
    } else {
      ++flood_delivered;
    }
  });
  // Port 2 floods port 1 with best-effort; port 0's VC must still get
  // its 250 KB/s.
  for (int i = 0; i < 400; ++i) s.p2->send(frame_of(2, 1, 1460));
  for (int i = 0; i < 20; ++i) s.p0->send(frame_of(0, 1, 1222));
  s.sim.run();
  ASSERT_EQ(reserved_arrivals.size(), 20u);
  EXPECT_EQ(flood_delivered, 400);
  const double span =
      reserved_arrivals.back() - reserved_arrivals.front();
  // 19 gaps of 1300 B at 250 KB/s = 5.2 ms each, plus at most one
  // best-effort frame time of head-of-line blocking per gap.
  EXPECT_GT(span, 19 * 0.0052 * 0.95);
  EXPECT_LT(span, 19 * (0.0052 + 0.00123) * 1.1);
}

TEST(QosNetworkTest, MultipleVcsShareAPortAtExactCapacity) {
  // Two VCs into port 1, each at half the 1.25 MB/s line rate: exactly
  // schedulable — both sustain their reservations concurrently.
  Switched s;
  s.network.reserve(0, 1, 625000.0);
  s.network.reserve(2, 1, 625000.0);
  std::map<int, std::vector<double>> arrivals;
  s.p1->set_receive_handler([&](const eth::Frame& f) {
    arrivals[f.src].push_back(s.sim.now().seconds());
  });
  for (int i = 0; i < 50; ++i) {
    s.p0->send(frame_of(0, 1, 1460));
    s.p2->send(frame_of(2, 1, 1460));
  }
  s.sim.run();
  ASSERT_EQ(arrivals[0].size(), 50u);
  ASSERT_EQ(arrivals[2].size(), 50u);
  for (int src : {0, 2}) {
    const auto& a = arrivals[src];
    const double span = a.back() - a.front();
    // 49 gaps of 1518 B at 625 KB/s = 2.43 ms each, small jitter from
    // interleaving with the other VC's frames.
    EXPECT_NEAR(span, 49 * 1518.0 / 625000.0, 0.01) << "src " << src;
  }
}

TEST(QosNetworkTest, UnknownDestinationIsDropped) {
  Switched s;
  s.p0->send(frame_of(0, 99, 100));
  s.sim.run();
  EXPECT_EQ(s.network.stats().frames_switched, 0u);
}

TEST(QosNetworkTest, DuplicatePortRejected) {
  Switched s;
  EXPECT_THROW((void)s.network.add_port(0), std::invalid_argument);
}

TEST(QosNetworkTest, ReservationBookkeeping) {
  Switched s;
  s.network.reserve(0, 1, 100.0);
  s.network.reserve(2, 1, 300.0);
  EXPECT_DOUBLE_EQ(s.network.reserved(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(s.network.total_reserved_into(1), 400.0);
  s.network.reserve(0, 1, 0.0);  // release
  EXPECT_DOUBLE_EQ(s.network.reserved(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.network.total_reserved_into(1), 300.0);
}

TEST(QosTestbedTest, Fft2dRunsOnTheSwitchedNetwork) {
  sim::Simulator simulator(31);
  apps::QosTestbedConfig config;
  config.pvm.keepalives_enabled = false;
  apps::QosTestbed testbed(simulator, config);
  testbed.start();
  apps::Fft2dParams params;
  params.n = 256;
  params.iterations = 5;
  params.flops_per_phase = 2e6;
  fx::run_program(testbed.vm(), apps::make_fft2d(params));
  EXPECT_GT(testbed.capture().size(), 1000u);
  // Every byte of every transpose arrived.
  std::uint64_t payload = 0;
  for (const auto& p : testbed.capture().packets()) {
    if (p.bytes > 58) payload += p.bytes - 58;
  }
  EXPECT_GT(payload, 5ull * 12ull * 64ull * 64ull * 8ull);
}

TEST(QosTestbedTest, ReservationsMakeRuntimePredictableUnderLoad) {
  auto run_with = [](bool reserve, bool flood) {
    sim::Simulator simulator(32);
    apps::QosTestbedConfig config;
    config.workstations = 5;  // 4 compute + 1 traffic source
    config.pvm.keepalives_enabled = false;
    apps::QosTestbed testbed(simulator, config);
    testbed.start();
    if (reserve) {
      // Reserve the all-to-all's negotiated per-connection share among
      // the four compute hosts.
      for (int s = 0; s < 4; ++s) {
        for (int d = 0; d < 4; ++d) {
          if (s != d) {
            testbed.network().reserve(static_cast<net::HostId>(s),
                                      static_cast<net::HostId>(d),
                                      1.25e6 / 4.0);
          }
        }
      }
    }
    host::CrossTrafficConfig cross;
    cross.model = host::CrossTrafficConfig::Model::kCbr;
    cross.rate_bytes_per_s = 1.0e6;  // hammer a compute host's port
    cross.destination = 0;
    host::CrossTrafficSource source(testbed.workstation(4), cross);
    if (flood) source.start();

    apps::Fft2dParams params;
    params.n = 256;
    params.iterations = 6;
    params.flops_per_phase = 2e6;
    return fx::run_program(testbed.vm(), apps::make_fft2d(params)).seconds();
  };
  const double quiet = run_with(false, false);
  const double loaded_besteffort = run_with(false, true);
  const double quiet_reserved = run_with(true, false);
  const double loaded_reserved = run_with(true, true);
  // Without reservations the flood badly slows the program.
  const double degradation_be = loaded_besteffort / quiet;
  EXPECT_GT(degradation_be, 1.5);
  // Reservations are strict shaping (CBR VCs): slower than an idle
  // best-effort network, but far more *predictable* under load — the
  // residual interference is bounded head-of-line blocking (one
  // non-preemptible best-effort frame per reserved packet), not
  // open-ended contention.  That predictability is the QoS pitch.
  const double degradation_reserved = loaded_reserved / quiet_reserved;
  EXPECT_GT(quiet_reserved, quiet);  // shaping costs idle-network speed
  EXPECT_LT(degradation_reserved, 1.10);
  EXPECT_LT(degradation_reserved, 0.6 * degradation_be);
}

}  // namespace
}  // namespace fxtraf
