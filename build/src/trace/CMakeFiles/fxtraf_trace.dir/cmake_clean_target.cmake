file(REMOVE_RECURSE
  "libfxtraf_trace.a"
)
