# Empty dependencies file for fxtraf_trace.
# This may be replaced when dependencies are built.
