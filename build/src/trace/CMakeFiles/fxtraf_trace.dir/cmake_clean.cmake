file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_trace.dir/capture.cpp.o"
  "CMakeFiles/fxtraf_trace.dir/capture.cpp.o.d"
  "CMakeFiles/fxtraf_trace.dir/pcap.cpp.o"
  "CMakeFiles/fxtraf_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/fxtraf_trace.dir/record.cpp.o"
  "CMakeFiles/fxtraf_trace.dir/record.cpp.o.d"
  "CMakeFiles/fxtraf_trace.dir/tracefile.cpp.o"
  "CMakeFiles/fxtraf_trace.dir/tracefile.cpp.o.d"
  "libfxtraf_trace.a"
  "libfxtraf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
