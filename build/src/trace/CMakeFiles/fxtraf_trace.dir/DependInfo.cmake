
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/capture.cpp" "src/trace/CMakeFiles/fxtraf_trace.dir/capture.cpp.o" "gcc" "src/trace/CMakeFiles/fxtraf_trace.dir/capture.cpp.o.d"
  "/root/repo/src/trace/pcap.cpp" "src/trace/CMakeFiles/fxtraf_trace.dir/pcap.cpp.o" "gcc" "src/trace/CMakeFiles/fxtraf_trace.dir/pcap.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/fxtraf_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/fxtraf_trace.dir/record.cpp.o.d"
  "/root/repo/src/trace/tracefile.cpp" "src/trace/CMakeFiles/fxtraf_trace.dir/tracefile.cpp.o" "gcc" "src/trace/CMakeFiles/fxtraf_trace.dir/tracefile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/fxtraf_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/fxtraf_ethernet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
