file(REMOVE_RECURSE
  "libfxtraf_fxc.a"
)
