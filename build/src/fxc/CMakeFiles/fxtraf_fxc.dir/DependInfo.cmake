
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fxc/analysis.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/analysis.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/analysis.cpp.o.d"
  "/root/repo/src/fxc/lexer.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/lexer.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/lexer.cpp.o.d"
  "/root/repo/src/fxc/lower.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/lower.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/lower.cpp.o.d"
  "/root/repo/src/fxc/parser.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/parser.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/parser.cpp.o.d"
  "/root/repo/src/fxc/printer.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/printer.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/printer.cpp.o.d"
  "/root/repo/src/fxc/sema/diagnostics.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/sema/diagnostics.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/sema/diagnostics.cpp.o.d"
  "/root/repo/src/fxc/sema/passes.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/sema/passes.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/sema/passes.cpp.o.d"
  "/root/repo/src/fxc/sema/predictor.cpp" "src/fxc/CMakeFiles/fxtraf_fxc.dir/sema/predictor.cpp.o" "gcc" "src/fxc/CMakeFiles/fxtraf_fxc.dir/sema/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fx/CMakeFiles/fxtraf_fx.dir/DependInfo.cmake"
  "/root/repo/build/src/pvm/CMakeFiles/fxtraf_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fxtraf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/fxtraf_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fxtraf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fxtraf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/fxtraf_ethernet.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/fxtraf_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fxtraf_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
