# Empty dependencies file for fxtraf_fxc.
# This may be replaced when dependencies are built.
