file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_fxc.dir/analysis.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/analysis.cpp.o.d"
  "CMakeFiles/fxtraf_fxc.dir/lexer.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/lexer.cpp.o.d"
  "CMakeFiles/fxtraf_fxc.dir/lower.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/lower.cpp.o.d"
  "CMakeFiles/fxtraf_fxc.dir/parser.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/parser.cpp.o.d"
  "CMakeFiles/fxtraf_fxc.dir/printer.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/printer.cpp.o.d"
  "CMakeFiles/fxtraf_fxc.dir/sema/diagnostics.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/sema/diagnostics.cpp.o.d"
  "CMakeFiles/fxtraf_fxc.dir/sema/passes.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/sema/passes.cpp.o.d"
  "CMakeFiles/fxtraf_fxc.dir/sema/predictor.cpp.o"
  "CMakeFiles/fxtraf_fxc.dir/sema/predictor.cpp.o.d"
  "libfxtraf_fxc.a"
  "libfxtraf_fxc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_fxc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
