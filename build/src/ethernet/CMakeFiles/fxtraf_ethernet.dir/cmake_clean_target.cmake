file(REMOVE_RECURSE
  "libfxtraf_ethernet.a"
)
