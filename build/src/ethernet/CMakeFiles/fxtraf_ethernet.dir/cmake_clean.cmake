file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_ethernet.dir/nic.cpp.o"
  "CMakeFiles/fxtraf_ethernet.dir/nic.cpp.o.d"
  "CMakeFiles/fxtraf_ethernet.dir/segment.cpp.o"
  "CMakeFiles/fxtraf_ethernet.dir/segment.cpp.o.d"
  "libfxtraf_ethernet.a"
  "libfxtraf_ethernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_ethernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
