# Empty dependencies file for fxtraf_ethernet.
# This may be replaced when dependencies are built.
