file(REMOVE_RECURSE
  "libfxtraf_fx.a"
)
