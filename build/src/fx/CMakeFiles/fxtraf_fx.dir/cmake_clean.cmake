file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_fx.dir/patterns.cpp.o"
  "CMakeFiles/fxtraf_fx.dir/patterns.cpp.o.d"
  "CMakeFiles/fxtraf_fx.dir/runtime.cpp.o"
  "CMakeFiles/fxtraf_fx.dir/runtime.cpp.o.d"
  "libfxtraf_fx.a"
  "libfxtraf_fx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_fx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
