# Empty dependencies file for fxtraf_fx.
# This may be replaced when dependencies are built.
