file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_pvm.dir/daemon.cpp.o"
  "CMakeFiles/fxtraf_pvm.dir/daemon.cpp.o.d"
  "CMakeFiles/fxtraf_pvm.dir/task.cpp.o"
  "CMakeFiles/fxtraf_pvm.dir/task.cpp.o.d"
  "CMakeFiles/fxtraf_pvm.dir/vm.cpp.o"
  "CMakeFiles/fxtraf_pvm.dir/vm.cpp.o.d"
  "libfxtraf_pvm.a"
  "libfxtraf_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
