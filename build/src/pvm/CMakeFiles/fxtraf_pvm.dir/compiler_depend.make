# Empty compiler generated dependencies file for fxtraf_pvm.
# This may be replaced when dependencies are built.
