
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pvm/daemon.cpp" "src/pvm/CMakeFiles/fxtraf_pvm.dir/daemon.cpp.o" "gcc" "src/pvm/CMakeFiles/fxtraf_pvm.dir/daemon.cpp.o.d"
  "/root/repo/src/pvm/task.cpp" "src/pvm/CMakeFiles/fxtraf_pvm.dir/task.cpp.o" "gcc" "src/pvm/CMakeFiles/fxtraf_pvm.dir/task.cpp.o.d"
  "/root/repo/src/pvm/vm.cpp" "src/pvm/CMakeFiles/fxtraf_pvm.dir/vm.cpp.o" "gcc" "src/pvm/CMakeFiles/fxtraf_pvm.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/fxtraf_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fxtraf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/fxtraf_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/fxtraf_ethernet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
