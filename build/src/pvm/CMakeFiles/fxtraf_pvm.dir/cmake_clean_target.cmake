file(REMOVE_RECURSE
  "libfxtraf_pvm.a"
)
