file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_host.dir/cross_traffic.cpp.o"
  "CMakeFiles/fxtraf_host.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/fxtraf_host.dir/workstation.cpp.o"
  "CMakeFiles/fxtraf_host.dir/workstation.cpp.o.d"
  "libfxtraf_host.a"
  "libfxtraf_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
