# Empty compiler generated dependencies file for fxtraf_host.
# This may be replaced when dependencies are built.
