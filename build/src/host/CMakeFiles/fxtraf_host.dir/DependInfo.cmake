
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/cross_traffic.cpp" "src/host/CMakeFiles/fxtraf_host.dir/cross_traffic.cpp.o" "gcc" "src/host/CMakeFiles/fxtraf_host.dir/cross_traffic.cpp.o.d"
  "/root/repo/src/host/workstation.cpp" "src/host/CMakeFiles/fxtraf_host.dir/workstation.cpp.o" "gcc" "src/host/CMakeFiles/fxtraf_host.dir/workstation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/fxtraf_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/fxtraf_ethernet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fxtraf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
