file(REMOVE_RECURSE
  "libfxtraf_host.a"
)
