# Empty compiler generated dependencies file for fxtraf_core.
# This may be replaced when dependencies are built.
