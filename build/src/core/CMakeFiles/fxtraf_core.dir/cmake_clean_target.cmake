file(REMOVE_RECURSE
  "libfxtraf_core.a"
)
