
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bandwidth.cpp" "src/core/CMakeFiles/fxtraf_core.dir/bandwidth.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/bandwidth.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/fxtraf_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/broker.cpp" "src/core/CMakeFiles/fxtraf_core.dir/broker.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/broker.cpp.o.d"
  "/root/repo/src/core/burst_model.cpp" "src/core/CMakeFiles/fxtraf_core.dir/burst_model.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/burst_model.cpp.o.d"
  "/root/repo/src/core/characterization.cpp" "src/core/CMakeFiles/fxtraf_core.dir/characterization.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/characterization.cpp.o.d"
  "/root/repo/src/core/correlation.cpp" "src/core/CMakeFiles/fxtraf_core.dir/correlation.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/correlation.cpp.o.d"
  "/root/repo/src/core/fourier_model.cpp" "src/core/CMakeFiles/fxtraf_core.dir/fourier_model.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/fourier_model.cpp.o.d"
  "/root/repo/src/core/packet_stats.cpp" "src/core/CMakeFiles/fxtraf_core.dir/packet_stats.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/packet_stats.cpp.o.d"
  "/root/repo/src/core/qos.cpp" "src/core/CMakeFiles/fxtraf_core.dir/qos.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/qos.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/fxtraf_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/report.cpp.o.d"
  "/root/repo/src/core/synth.cpp" "src/core/CMakeFiles/fxtraf_core.dir/synth.cpp.o" "gcc" "src/core/CMakeFiles/fxtraf_core.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fxtraf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fxtraf_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fx/CMakeFiles/fxtraf_fx.dir/DependInfo.cmake"
  "/root/repo/build/src/pvm/CMakeFiles/fxtraf_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/fxtraf_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fxtraf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/fxtraf_ethernet.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/fxtraf_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
