file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_core.dir/bandwidth.cpp.o"
  "CMakeFiles/fxtraf_core.dir/bandwidth.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/baselines.cpp.o"
  "CMakeFiles/fxtraf_core.dir/baselines.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/broker.cpp.o"
  "CMakeFiles/fxtraf_core.dir/broker.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/burst_model.cpp.o"
  "CMakeFiles/fxtraf_core.dir/burst_model.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/characterization.cpp.o"
  "CMakeFiles/fxtraf_core.dir/characterization.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/correlation.cpp.o"
  "CMakeFiles/fxtraf_core.dir/correlation.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/fourier_model.cpp.o"
  "CMakeFiles/fxtraf_core.dir/fourier_model.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/packet_stats.cpp.o"
  "CMakeFiles/fxtraf_core.dir/packet_stats.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/qos.cpp.o"
  "CMakeFiles/fxtraf_core.dir/qos.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/report.cpp.o"
  "CMakeFiles/fxtraf_core.dir/report.cpp.o.d"
  "CMakeFiles/fxtraf_core.dir/synth.cpp.o"
  "CMakeFiles/fxtraf_core.dir/synth.cpp.o.d"
  "libfxtraf_core.a"
  "libfxtraf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
