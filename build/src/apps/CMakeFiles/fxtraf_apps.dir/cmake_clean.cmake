file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_apps.dir/airshed.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/airshed.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/fft2d.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/fft2d.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/hist.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/hist.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/qos_testbed.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/qos_testbed.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/registry.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/registry.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/seq.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/seq.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/sor.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/sor.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/source_registry.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/source_registry.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/testbed.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/testbed.cpp.o.d"
  "CMakeFiles/fxtraf_apps.dir/tfft2d.cpp.o"
  "CMakeFiles/fxtraf_apps.dir/tfft2d.cpp.o.d"
  "libfxtraf_apps.a"
  "libfxtraf_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
