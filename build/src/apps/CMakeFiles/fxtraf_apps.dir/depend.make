# Empty dependencies file for fxtraf_apps.
# This may be replaced when dependencies are built.
