file(REMOVE_RECURSE
  "libfxtraf_apps.a"
)
