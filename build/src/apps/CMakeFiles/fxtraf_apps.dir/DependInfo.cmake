
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/airshed.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/airshed.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/airshed.cpp.o.d"
  "/root/repo/src/apps/fft2d.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/fft2d.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/fft2d.cpp.o.d"
  "/root/repo/src/apps/hist.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/hist.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/hist.cpp.o.d"
  "/root/repo/src/apps/qos_testbed.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/qos_testbed.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/qos_testbed.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/seq.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/seq.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/seq.cpp.o.d"
  "/root/repo/src/apps/sor.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/sor.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/sor.cpp.o.d"
  "/root/repo/src/apps/source_registry.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/source_registry.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/source_registry.cpp.o.d"
  "/root/repo/src/apps/testbed.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/testbed.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/testbed.cpp.o.d"
  "/root/repo/src/apps/tfft2d.cpp" "src/apps/CMakeFiles/fxtraf_apps.dir/tfft2d.cpp.o" "gcc" "src/apps/CMakeFiles/fxtraf_apps.dir/tfft2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fx/CMakeFiles/fxtraf_fx.dir/DependInfo.cmake"
  "/root/repo/build/src/pvm/CMakeFiles/fxtraf_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fxtraf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/fxtraf_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/fxtraf_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fxtraf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/fxtraf_ethernet.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/fxtraf_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
