file(REMOVE_RECURSE
  "libfxtraf_dsp.a"
)
