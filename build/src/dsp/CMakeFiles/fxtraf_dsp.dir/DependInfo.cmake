
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/autocorr.cpp" "src/dsp/CMakeFiles/fxtraf_dsp.dir/autocorr.cpp.o" "gcc" "src/dsp/CMakeFiles/fxtraf_dsp.dir/autocorr.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/fxtraf_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/fxtraf_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/peaks.cpp" "src/dsp/CMakeFiles/fxtraf_dsp.dir/peaks.cpp.o" "gcc" "src/dsp/CMakeFiles/fxtraf_dsp.dir/peaks.cpp.o.d"
  "/root/repo/src/dsp/periodogram.cpp" "src/dsp/CMakeFiles/fxtraf_dsp.dir/periodogram.cpp.o" "gcc" "src/dsp/CMakeFiles/fxtraf_dsp.dir/periodogram.cpp.o.d"
  "/root/repo/src/dsp/spectrogram.cpp" "src/dsp/CMakeFiles/fxtraf_dsp.dir/spectrogram.cpp.o" "gcc" "src/dsp/CMakeFiles/fxtraf_dsp.dir/spectrogram.cpp.o.d"
  "/root/repo/src/dsp/welch.cpp" "src/dsp/CMakeFiles/fxtraf_dsp.dir/welch.cpp.o" "gcc" "src/dsp/CMakeFiles/fxtraf_dsp.dir/welch.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/fxtraf_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/fxtraf_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
