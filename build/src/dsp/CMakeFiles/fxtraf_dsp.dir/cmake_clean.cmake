file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_dsp.dir/autocorr.cpp.o"
  "CMakeFiles/fxtraf_dsp.dir/autocorr.cpp.o.d"
  "CMakeFiles/fxtraf_dsp.dir/fft.cpp.o"
  "CMakeFiles/fxtraf_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/fxtraf_dsp.dir/peaks.cpp.o"
  "CMakeFiles/fxtraf_dsp.dir/peaks.cpp.o.d"
  "CMakeFiles/fxtraf_dsp.dir/periodogram.cpp.o"
  "CMakeFiles/fxtraf_dsp.dir/periodogram.cpp.o.d"
  "CMakeFiles/fxtraf_dsp.dir/spectrogram.cpp.o"
  "CMakeFiles/fxtraf_dsp.dir/spectrogram.cpp.o.d"
  "CMakeFiles/fxtraf_dsp.dir/welch.cpp.o"
  "CMakeFiles/fxtraf_dsp.dir/welch.cpp.o.d"
  "CMakeFiles/fxtraf_dsp.dir/window.cpp.o"
  "CMakeFiles/fxtraf_dsp.dir/window.cpp.o.d"
  "libfxtraf_dsp.a"
  "libfxtraf_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
