# Empty compiler generated dependencies file for fxtraf_dsp.
# This may be replaced when dependencies are built.
