file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_net.dir/stack.cpp.o"
  "CMakeFiles/fxtraf_net.dir/stack.cpp.o.d"
  "CMakeFiles/fxtraf_net.dir/tcp.cpp.o"
  "CMakeFiles/fxtraf_net.dir/tcp.cpp.o.d"
  "libfxtraf_net.a"
  "libfxtraf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
