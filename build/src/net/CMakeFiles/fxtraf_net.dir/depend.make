# Empty dependencies file for fxtraf_net.
# This may be replaced when dependencies are built.
