file(REMOVE_RECURSE
  "libfxtraf_net.a"
)
