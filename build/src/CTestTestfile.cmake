# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("dsp")
subdirs("ethernet")
subdirs("atm")
subdirs("net")
subdirs("host")
subdirs("pvm")
subdirs("trace")
subdirs("fx")
subdirs("core")
subdirs("fxc")
subdirs("apps")
