file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/fxtraf_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/fxtraf_simcore.dir/simulator.cpp.o"
  "CMakeFiles/fxtraf_simcore.dir/simulator.cpp.o.d"
  "CMakeFiles/fxtraf_simcore.dir/time.cpp.o"
  "CMakeFiles/fxtraf_simcore.dir/time.cpp.o.d"
  "libfxtraf_simcore.a"
  "libfxtraf_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
