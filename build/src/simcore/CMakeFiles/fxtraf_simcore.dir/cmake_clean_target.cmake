file(REMOVE_RECURSE
  "libfxtraf_simcore.a"
)
