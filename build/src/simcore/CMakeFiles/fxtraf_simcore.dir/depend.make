# Empty dependencies file for fxtraf_simcore.
# This may be replaced when dependencies are built.
