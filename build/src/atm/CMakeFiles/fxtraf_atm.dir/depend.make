# Empty dependencies file for fxtraf_atm.
# This may be replaced when dependencies are built.
