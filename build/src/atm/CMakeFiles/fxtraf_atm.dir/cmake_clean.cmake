file(REMOVE_RECURSE
  "CMakeFiles/fxtraf_atm.dir/qos_network.cpp.o"
  "CMakeFiles/fxtraf_atm.dir/qos_network.cpp.o.d"
  "libfxtraf_atm.a"
  "libfxtraf_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxtraf_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
