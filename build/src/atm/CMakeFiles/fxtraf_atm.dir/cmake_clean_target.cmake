file(REMOVE_RECURSE
  "libfxtraf_atm.a"
)
