# Empty dependencies file for qos_planner.
# This may be replaced when dependencies are built.
