file(REMOVE_RECURSE
  "CMakeFiles/fxc_lint.dir/fxc_lint.cpp.o"
  "CMakeFiles/fxc_lint.dir/fxc_lint.cpp.o.d"
  "fxc_lint"
  "fxc_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxc_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
