# Empty dependencies file for fxc_lint.
# This may be replaced when dependencies are built.
