file(REMOVE_RECURSE
  "CMakeFiles/synthetic_traffic.dir/synthetic_traffic.cpp.o"
  "CMakeFiles/synthetic_traffic.dir/synthetic_traffic.cpp.o.d"
  "synthetic_traffic"
  "synthetic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
