file(REMOVE_RECURSE
  "CMakeFiles/kernel_study.dir/kernel_study.cpp.o"
  "CMakeFiles/kernel_study.dir/kernel_study.cpp.o.d"
  "kernel_study"
  "kernel_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
