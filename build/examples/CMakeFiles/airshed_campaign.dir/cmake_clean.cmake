file(REMOVE_RECURSE
  "CMakeFiles/airshed_campaign.dir/airshed_campaign.cpp.o"
  "CMakeFiles/airshed_campaign.dir/airshed_campaign.cpp.o.d"
  "airshed_campaign"
  "airshed_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airshed_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
