# Empty compiler generated dependencies file for airshed_campaign.
# This may be replaced when dependencies are built.
