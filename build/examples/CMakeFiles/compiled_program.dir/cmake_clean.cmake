file(REMOVE_RECURSE
  "CMakeFiles/compiled_program.dir/compiled_program.cpp.o"
  "CMakeFiles/compiled_program.dir/compiled_program.cpp.o.d"
  "compiled_program"
  "compiled_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
