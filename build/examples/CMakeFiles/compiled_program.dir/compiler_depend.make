# Empty compiler generated dependencies file for compiled_program.
# This may be replaced when dependencies are built.
