file(REMOVE_RECURSE
  "CMakeFiles/test_pvm.dir/test_pvm.cpp.o"
  "CMakeFiles/test_pvm.dir/test_pvm.cpp.o.d"
  "test_pvm"
  "test_pvm.pdb"
  "test_pvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
