# Empty dependencies file for test_qos_network.
# This may be replaced when dependencies are built.
