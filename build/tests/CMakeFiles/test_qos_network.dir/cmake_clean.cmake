file(REMOVE_RECURSE
  "CMakeFiles/test_qos_network.dir/test_qos_network.cpp.o"
  "CMakeFiles/test_qos_network.dir/test_qos_network.cpp.o.d"
  "test_qos_network"
  "test_qos_network.pdb"
  "test_qos_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qos_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
