# Empty compiler generated dependencies file for test_fxc.
# This may be replaced when dependencies are built.
