# Empty compiler generated dependencies file for test_kernel_sweep.
# This may be replaced when dependencies are built.
