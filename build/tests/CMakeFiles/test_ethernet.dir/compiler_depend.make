# Empty compiler generated dependencies file for test_ethernet.
# This may be replaced when dependencies are built.
