file(REMOVE_RECURSE
  "CMakeFiles/test_ethernet.dir/test_ethernet.cpp.o"
  "CMakeFiles/test_ethernet.dir/test_ethernet.cpp.o.d"
  "test_ethernet"
  "test_ethernet.pdb"
  "test_ethernet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ethernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
