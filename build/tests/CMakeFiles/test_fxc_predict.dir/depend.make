# Empty dependencies file for test_fxc_predict.
# This may be replaced when dependencies are built.
