file(REMOVE_RECURSE
  "CMakeFiles/test_fxc_predict.dir/test_fxc_predict.cpp.o"
  "CMakeFiles/test_fxc_predict.dir/test_fxc_predict.cpp.o.d"
  "test_fxc_predict"
  "test_fxc_predict.pdb"
  "test_fxc_predict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxc_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
