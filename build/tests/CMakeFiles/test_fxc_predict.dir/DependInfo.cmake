
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fxc_predict.cpp" "tests/CMakeFiles/test_fxc_predict.dir/test_fxc_predict.cpp.o" "gcc" "tests/CMakeFiles/test_fxc_predict.dir/test_fxc_predict.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fxtraf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fxtraf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/fxc/CMakeFiles/fxtraf_fxc.dir/DependInfo.cmake"
  "/root/repo/build/src/fx/CMakeFiles/fxtraf_fx.dir/DependInfo.cmake"
  "/root/repo/build/src/pvm/CMakeFiles/fxtraf_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fxtraf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/fxtraf_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fxtraf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/fxtraf_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/fxtraf_ethernet.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fxtraf_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/fxtraf_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
