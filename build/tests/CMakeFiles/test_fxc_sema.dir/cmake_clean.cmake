file(REMOVE_RECURSE
  "CMakeFiles/test_fxc_sema.dir/test_fxc_sema.cpp.o"
  "CMakeFiles/test_fxc_sema.dir/test_fxc_sema.cpp.o.d"
  "test_fxc_sema"
  "test_fxc_sema.pdb"
  "test_fxc_sema[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxc_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
