# Empty dependencies file for test_fxc_sema.
# This may be replaced when dependencies are built.
