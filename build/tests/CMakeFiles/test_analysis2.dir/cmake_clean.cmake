file(REMOVE_RECURSE
  "CMakeFiles/test_analysis2.dir/test_analysis2.cpp.o"
  "CMakeFiles/test_analysis2.dir/test_analysis2.cpp.o.d"
  "test_analysis2"
  "test_analysis2.pdb"
  "test_analysis2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
