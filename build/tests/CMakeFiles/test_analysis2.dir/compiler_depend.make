# Empty compiler generated dependencies file for test_analysis2.
# This may be replaced when dependencies are built.
