file(REMOVE_RECURSE
  "CMakeFiles/test_analysis3.dir/test_analysis3.cpp.o"
  "CMakeFiles/test_analysis3.dir/test_analysis3.cpp.o.d"
  "test_analysis3"
  "test_analysis3.pdb"
  "test_analysis3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
