# Empty dependencies file for test_analysis3.
# This may be replaced when dependencies are built.
