file(REMOVE_RECURSE
  "CMakeFiles/test_fxc_parser.dir/test_fxc_parser.cpp.o"
  "CMakeFiles/test_fxc_parser.dir/test_fxc_parser.cpp.o.d"
  "test_fxc_parser"
  "test_fxc_parser.pdb"
  "test_fxc_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
