# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_coro[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_ethernet[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_qos_network[1]_include.cmake")
include("/root/repo/build/tests/test_pvm[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_fxc[1]_include.cmake")
include("/root/repo/build/tests/test_fxc_parser[1]_include.cmake")
include("/root/repo/build/tests/test_fxc_sema[1]_include.cmake")
include("/root/repo/build/tests/test_fxc_predict[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_core_stats[1]_include.cmake")
include("/root/repo/build/tests/test_analysis2[1]_include.cmake")
include("/root/repo/build/tests/test_analysis3[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_sweep[1]_include.cmake")
