file(REMOVE_RECURSE
  "CMakeFiles/fig09_airshed_interarrival.dir/fig09_airshed_interarrival.cpp.o"
  "CMakeFiles/fig09_airshed_interarrival.dir/fig09_airshed_interarrival.cpp.o.d"
  "fig09_airshed_interarrival"
  "fig09_airshed_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_airshed_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
