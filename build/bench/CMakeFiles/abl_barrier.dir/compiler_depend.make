# Empty compiler generated dependencies file for abl_barrier.
# This may be replaced when dependencies are built.
