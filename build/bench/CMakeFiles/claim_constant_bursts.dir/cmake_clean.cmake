file(REMOVE_RECURSE
  "CMakeFiles/claim_constant_bursts.dir/claim_constant_bursts.cpp.o"
  "CMakeFiles/claim_constant_bursts.dir/claim_constant_bursts.cpp.o.d"
  "claim_constant_bursts"
  "claim_constant_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_constant_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
