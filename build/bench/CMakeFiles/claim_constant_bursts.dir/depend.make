# Empty dependencies file for claim_constant_bursts.
# This may be replaced when dependencies are built.
