file(REMOVE_RECURSE
  "CMakeFiles/fig04_interarrival.dir/fig04_interarrival.cpp.o"
  "CMakeFiles/fig04_interarrival.dir/fig04_interarrival.cpp.o.d"
  "fig04_interarrival"
  "fig04_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
