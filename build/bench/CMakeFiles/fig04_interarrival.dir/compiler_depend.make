# Empty compiler generated dependencies file for fig04_interarrival.
# This may be replaced when dependencies are built.
