# Empty compiler generated dependencies file for claim_correlation.
# This may be replaced when dependencies are built.
