file(REMOVE_RECURSE
  "CMakeFiles/claim_correlation.dir/claim_correlation.cpp.o"
  "CMakeFiles/claim_correlation.dir/claim_correlation.cpp.o.d"
  "claim_correlation"
  "claim_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
