file(REMOVE_RECURSE
  "CMakeFiles/sec72_model_accuracy.dir/sec72_model_accuracy.cpp.o"
  "CMakeFiles/sec72_model_accuracy.dir/sec72_model_accuracy.cpp.o.d"
  "sec72_model_accuracy"
  "sec72_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
