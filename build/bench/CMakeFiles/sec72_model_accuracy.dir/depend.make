# Empty dependencies file for sec72_model_accuracy.
# This may be replaced when dependencies are built.
