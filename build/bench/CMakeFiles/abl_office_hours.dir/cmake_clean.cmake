file(REMOVE_RECURSE
  "CMakeFiles/abl_office_hours.dir/abl_office_hours.cpp.o"
  "CMakeFiles/abl_office_hours.dir/abl_office_hours.cpp.o.d"
  "abl_office_hours"
  "abl_office_hours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_office_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
