# Empty compiler generated dependencies file for abl_office_hours.
# This may be replaced when dependencies are built.
