file(REMOVE_RECURSE
  "CMakeFiles/fig06_instant_bandwidth.dir/fig06_instant_bandwidth.cpp.o"
  "CMakeFiles/fig06_instant_bandwidth.dir/fig06_instant_bandwidth.cpp.o.d"
  "fig06_instant_bandwidth"
  "fig06_instant_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_instant_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
