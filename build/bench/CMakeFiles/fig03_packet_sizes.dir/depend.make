# Empty dependencies file for fig03_packet_sizes.
# This may be replaced when dependencies are built.
