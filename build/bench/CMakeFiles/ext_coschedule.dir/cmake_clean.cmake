file(REMOVE_RECURSE
  "CMakeFiles/ext_coschedule.dir/ext_coschedule.cpp.o"
  "CMakeFiles/ext_coschedule.dir/ext_coschedule.cpp.o.d"
  "ext_coschedule"
  "ext_coschedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_coschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
