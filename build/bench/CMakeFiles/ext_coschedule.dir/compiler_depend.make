# Empty compiler generated dependencies file for ext_coschedule.
# This may be replaced when dependencies are built.
