# Empty compiler generated dependencies file for abl_window_size.
# This may be replaced when dependencies are built.
