# Empty dependencies file for claim_vs_media.
# This may be replaced when dependencies are built.
