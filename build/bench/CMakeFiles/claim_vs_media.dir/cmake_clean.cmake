file(REMOVE_RECURSE
  "CMakeFiles/claim_vs_media.dir/claim_vs_media.cpp.o"
  "CMakeFiles/claim_vs_media.dir/claim_vs_media.cpp.o.d"
  "claim_vs_media"
  "claim_vs_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_vs_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
