file(REMOVE_RECURSE
  "CMakeFiles/claim_bw_period.dir/claim_bw_period.cpp.o"
  "CMakeFiles/claim_bw_period.dir/claim_bw_period.cpp.o.d"
  "claim_bw_period"
  "claim_bw_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_bw_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
