# Empty compiler generated dependencies file for claim_bw_period.
# This may be replaced when dependencies are built.
