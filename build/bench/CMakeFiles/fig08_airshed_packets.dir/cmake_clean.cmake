file(REMOVE_RECURSE
  "CMakeFiles/fig08_airshed_packets.dir/fig08_airshed_packets.cpp.o"
  "CMakeFiles/fig08_airshed_packets.dir/fig08_airshed_packets.cpp.o.d"
  "fig08_airshed_packets"
  "fig08_airshed_packets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_airshed_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
