# Empty compiler generated dependencies file for fig08_airshed_packets.
# This may be replaced when dependencies are built.
