file(REMOVE_RECURSE
  "CMakeFiles/fig07_power_spectra.dir/fig07_power_spectra.cpp.o"
  "CMakeFiles/fig07_power_spectra.dir/fig07_power_spectra.cpp.o.d"
  "fig07_power_spectra"
  "fig07_power_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_power_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
