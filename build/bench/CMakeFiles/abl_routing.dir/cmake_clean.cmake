file(REMOVE_RECURSE
  "CMakeFiles/abl_routing.dir/abl_routing.cpp.o"
  "CMakeFiles/abl_routing.dir/abl_routing.cpp.o.d"
  "abl_routing"
  "abl_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
