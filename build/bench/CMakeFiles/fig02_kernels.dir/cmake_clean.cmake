file(REMOVE_RECURSE
  "CMakeFiles/fig02_kernels.dir/fig02_kernels.cpp.o"
  "CMakeFiles/fig02_kernels.dir/fig02_kernels.cpp.o.d"
  "fig02_kernels"
  "fig02_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
