# Empty dependencies file for fig02_kernels.
# This may be replaced when dependencies are built.
