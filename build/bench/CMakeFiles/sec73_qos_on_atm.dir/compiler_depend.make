# Empty compiler generated dependencies file for sec73_qos_on_atm.
# This may be replaced when dependencies are built.
