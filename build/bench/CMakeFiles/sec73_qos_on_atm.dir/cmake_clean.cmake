file(REMOVE_RECURSE
  "CMakeFiles/sec73_qos_on_atm.dir/sec73_qos_on_atm.cpp.o"
  "CMakeFiles/sec73_qos_on_atm.dir/sec73_qos_on_atm.cpp.o.d"
  "sec73_qos_on_atm"
  "sec73_qos_on_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_qos_on_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
