file(REMOVE_RECURSE
  "CMakeFiles/sec73_qos_negotiation.dir/sec73_qos_negotiation.cpp.o"
  "CMakeFiles/sec73_qos_negotiation.dir/sec73_qos_negotiation.cpp.o.d"
  "sec73_qos_negotiation"
  "sec73_qos_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_qos_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
