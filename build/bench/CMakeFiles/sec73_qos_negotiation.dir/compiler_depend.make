# Empty compiler generated dependencies file for sec73_qos_negotiation.
# This may be replaced when dependencies are built.
