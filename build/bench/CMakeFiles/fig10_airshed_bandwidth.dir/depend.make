# Empty dependencies file for fig10_airshed_bandwidth.
# This may be replaced when dependencies are built.
