file(REMOVE_RECURSE
  "CMakeFiles/fig11_airshed_spectra.dir/fig11_airshed_spectra.cpp.o"
  "CMakeFiles/fig11_airshed_spectra.dir/fig11_airshed_spectra.cpp.o.d"
  "fig11_airshed_spectra"
  "fig11_airshed_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_airshed_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
