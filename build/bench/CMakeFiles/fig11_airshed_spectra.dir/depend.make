# Empty dependencies file for fig11_airshed_spectra.
# This may be replaced when dependencies are built.
