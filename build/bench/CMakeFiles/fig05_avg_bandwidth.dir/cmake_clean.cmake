file(REMOVE_RECURSE
  "CMakeFiles/fig05_avg_bandwidth.dir/fig05_avg_bandwidth.cpp.o"
  "CMakeFiles/fig05_avg_bandwidth.dir/fig05_avg_bandwidth.cpp.o.d"
  "fig05_avg_bandwidth"
  "fig05_avg_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_avg_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
