# Empty dependencies file for fig05_avg_bandwidth.
# This may be replaced when dependencies are built.
